#!/bin/sh
# Pin the POTX_* environment to its defaults before exec'ing the
# wrapped command, so a developer's shell cannot perturb a golden
# capture.  Command-line flags still override (they take precedence
# over the environment in bin/potx.ml), which is how the --domains 4
# golden variant works without a special rule.
unset POTX_DOMAINS POTX_SHARD POTX_WORKERS POTX_FAULTS POTX_RETRIES \
      POTX_CACHE POTX_ENGINE POTX_TRACE POTX_METRICS POTX_PROFILE
exec "$@"
