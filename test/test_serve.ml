(* The resident timing service: protocol round-trips, warm-vs-cold
   reply identity, request-order byte determinism across worker-domain
   counts, and session survival of injected faults.

   The warm sessions here run the same reduced config as test_shard
   (tile=1500, 2 OPC iterations, 3 slices) so a full flow warm-up is
   cheap enough to repeat per domain count. *)

module F = Timing_opc.Flow
module P = Timing_opc_serve.Protocol
module Session = Timing_opc_serve.Session
module Server = Timing_opc_serve.Server

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checks = Alcotest.(check string)

let check_ps what = Alcotest.(check (float 1e-6)) what

(* The same reduced config as test_shard, via the shared kit. *)
let base_config ?domains () = Identity_helpers.base_config ?domains ()

let session_for =
  let cache = Hashtbl.create 4 in
  (* Pools own spawned domains; join them before the test binary exits. *)
  at_exit (fun () -> Hashtbl.iter (fun _ s -> Session.close s) cache);
  fun domains ->
    match Hashtbl.find_opt cache domains with
    | Some s -> s
    | None ->
        let s =
          Session.create ~bench:"c17" (base_config ~domains ())
            (Circuit.Generator.c17 ())
        in
        Hashtbl.add cache domains s;
        s

(* ---- protocol ---- *)

let all_requests =
  [
    P.Status;
    P.Retime { endpoint = None };
    P.Retime { endpoint = Some 9 };
    P.Whatif { gate = "g22"; change = P.Resize { dl = 3.5 } };
    P.Whatif { gate = "g22"; change = P.Move { dx = 400; dy = -200 } };
    P.Cds { region = None };
    P.Cds { region = Some (Geometry.Rect.make ~lx:0 ~ly:0 ~hx:3000 ~hy:3000) };
    P.Corner { dose = 1.03; defocus = 90.0; spread = None };
    P.Corner { dose = 0.97; defocus = 30.0; spread = Some 8.0 };
    P.Ssta { top = None };
    P.Ssta { top = Some 3 };
    P.Metrics { all = false };
    P.Metrics { all = true };
    P.Profile { target = P.Status };
    P.Profile { target = P.Retime { endpoint = Some 9 } };
    P.Profile
      { target = P.Whatif { gate = "g22"; change = P.Resize { dl = 3.5 } } };
    P.Shutdown;
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match P.parse_request (P.request_to_string ~id:7 r) with
      | Ok (Some 7, r') ->
          checkb ("roundtrip " ^ P.verb r) true (r = r')
      | Ok _ -> Alcotest.failf "lost id on %s" (P.verb r)
      | Error e -> Alcotest.failf "%s failed to reparse: %s" (P.verb r) e)
    all_requests;
  (* Without an id the parse must report None (server assigns one). *)
  (match P.parse_request (P.request_to_string P.Status) with
  | Ok (None, P.Status) -> ()
  | _ -> Alcotest.fail "id-less status");
  ()

let sample_path =
  { P.endpoint = 9; arrival = 38.25; slack = 2.5; gates = [ "g11"; "g22" ] }

let all_replies =
  [
    ( "status",
      P.Status_r
        {
          bench = "c17";
          gates = 6;
          nets = 11;
          clock_period = 40.625;
          drawn_wns = 1.875;
          wns = 2.25;
          tns = 0.0;
          cds = 24;
        } );
    ("retime", P.Retime_r { path = sample_path; reevaluated = 0 });
    ( "whatif",
      P.Whatif_r
        {
          gate = "g22";
          wns_before = 2.25;
          wns_after = 1.75;
          worst = sample_path;
          reevaluated = 3;
          remeasured = 8;
        } );
    ( "cds",
      P.Cds_r
        [
          { P.gate = "g10/MN0"; cd = 88.5; delta = -1.5; printed = true };
          { P.gate = "g10/MP0"; cd = 90.0; delta = 0.0; printed = false };
        ] );
    ( "corner",
      P.Corner_r
        {
          dose = 1.03;
          defocus = 90.0;
          wns = 1.625;
          tns = -0.5;
          corners = [ ("fast", 6.25); ("nominal", 1.875); ("slow", -2.375) ];
        } );
    ( "ssta",
      (* Floats chosen to survive the %.6g wire encoding, as above. *)
      P.Ssta_r
        {
          clock_period = 40.625;
          wns_mean = 2.125;
          wns_sigma = 1.25;
          fail_probability = 0.03125;
          shift = -0.5;
          global_sigma = 2.5;
          local_sigma = 1.5;
          conditions = 9;
          endpoints =
            [
              {
                P.net = 9;
                slack_mean = 2.25;
                slack_sigma = 1.125;
                criticality = 0.75;
              };
              {
                P.net = 10;
                slack_mean = 2.5;
                slack_sigma = 1.0;
                criticality = 0.25;
              };
            ];
        } );
    ( "metrics",
      P.Metrics_r
        {
          counters = [ ("serve.requests", 5); ("serve.verb.cds", 1) ];
          registry = None;
        } );
    ( "metrics",
      (* all:true shape — counters plus a full registry dump; float
         values here are chosen to survive the %.6g wire encoding so
         the round-trip compares structurally equal. *)
      P.Metrics_r
        {
          counters = [ ("serve.requests", 5) ];
          registry =
            Some
              [
                ("flow.runs", Obs.Metrics.Counter 3);
                ("opc.wall_s", Obs.Metrics.Gauge 1.5);
                ( "serve.latency.retime",
                  Obs.Metrics.Histogram
                    {
                      Obs.Metrics.edges = [| 0.5; 1.0; 2.0 |];
                      counts = [| 2; 1; 0; 1 |];
                      count = 4;
                      sum = 4.25;
                    } );
              ];
        } );
    ( "profile",
      P.Profile_r
        {
          target = "retime";
          target_ok = true;
          spans = 2;
          trace =
            Obs.Json.Obj
              [
                ( "traceEvents",
                  Obs.Json.Arr
                    [
                      Obs.Json.Obj
                        [
                          ("name", Obs.Json.Str "serve.profile.retime");
                          ("ph", Obs.Json.Str "X");
                          ("ts", Obs.Json.Num 0.0);
                          ("dur", Obs.Json.Num 1250.0);
                          ("pid", Obs.Json.Num 1.0);
                          ("tid", Obs.Json.Num 0.0);
                        ];
                    ] );
                ("displayTimeUnit", Obs.Json.Str "ms");
              ];
        } );
    ("shutdown", P.Shutdown_r);
  ]

let test_response_roundtrip () =
  List.iter
    (fun (verb, reply) ->
      let r = { P.id = 3; verb = Some verb; reply = Ok reply } in
      match P.parse_response (P.response_to_string r) with
      | Ok r' -> checkb ("roundtrip " ^ verb) true (r = r')
      | Error e -> Alcotest.failf "%s reply failed to reparse: %s" verb e)
    all_replies;
  let err = { P.id = 4; verb = None; reply = Error "bad JSON: oops" } in
  (match P.parse_response (P.response_to_string err) with
  | Ok r' -> checkb "error roundtrip" true (err = r')
  | Error e -> Alcotest.failf "error reply failed to reparse: %s" e);
  ()

let malformed =
  [
    "";
    "{";
    "[1,2]";
    "42";
    {|{"gate":"g10"}|};
    {|{"verb":"zap"}|};
    {|{"verb":7}|};
    {|{"id":3.5,"verb":"status"}|};
    {|{"verb":"whatif","gate":"g10"}|};
    {|{"verb":"whatif","gate":"g10","dl":1,"dx":2}|};
    {|{"verb":"whatif","dl":1}|};
    {|{"verb":"cds","lx":1}|};
    {|{"verb":"cds","lx":1,"ly":2,"hx":3}|};
    {|{"verb":"corner","dose":1.0}|};
    {|{"verb":"corner","defocus":30}|};
    {|{"verb":"retime","endpoint":1.5}|};
    {|{"verb":"metrics","all":1}|};
    {|{"verb":"profile","of":{"verb":"profile"}}|};
    {|{"verb":"profile","of":{"verb":"shutdown"}}|};
    {|{"verb":"profile","of":{"verb":"zap"}}|};
    {|{"verb":"profile","of":"retime"}|};
  ]

let test_malformed_requests () =
  List.iter
    (fun line ->
      match P.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request %S" line)
    malformed

(* ---- warm vs cold identity ---- *)

let reply_exn s request =
  match Session.handle s request with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "%s failed: %s" (P.verb request) e

let test_status_matches_run () =
  let s = session_for 1 in
  let r = Session.run s in
  match reply_exn s P.Status with
  | P.Status_r st ->
      checks "bench" "c17" st.bench;
      checki "gates" (Circuit.Netlist.num_gates r.F.netlist) st.gates;
      checki "cds" (List.length r.F.cds) st.cds;
      check_ps "wns" r.F.post_opc_sta.Sta.Timing.wns st.wns
  | _ -> Alcotest.fail "not a status reply"

(* retime must reproduce the warm view: an empty change set through
   Sta.Incremental re-evaluates nothing and returns the same paths a
   cold full analyze would. *)
let test_retime_matches_cold () =
  let s = session_for 1 in
  let r = Session.run s in
  let cold = F.time_with r ~lengths_of:(F.lengths_of r) in
  (match reply_exn s (P.Retime { endpoint = None }) with
  | P.Retime_r { path; reevaluated } ->
      checki "nothing re-evaluated" 0 reevaluated;
      let worst = List.hd cold.Sta.Timing.paths in
      checki "endpoint" worst.Sta.Timing.endpoint path.P.endpoint;
      check_ps "arrival" worst.Sta.Timing.arrival path.P.arrival;
      check_ps "slack" worst.Sta.Timing.slack path.P.slack;
      checkb "gates" true (worst.Sta.Timing.gates = path.P.gates)
  | _ -> Alcotest.fail "not a retime reply");
  (* Per-endpoint retime agrees with the cold path list too. *)
  List.iter
    (fun (p : Sta.Timing.path) ->
      match reply_exn s (P.Retime { endpoint = Some p.Sta.Timing.endpoint }) with
      | P.Retime_r { path; _ } ->
          check_ps "endpoint arrival" p.Sta.Timing.arrival path.P.arrival
      | _ -> Alcotest.fail "not a retime reply")
    cold.Sta.Timing.paths

(* Every resize what-if equals the cold batch computation: a full
   Timing.analyze under the biased lengths view. *)
let test_resize_matches_cold () =
  let s = session_for 1 in
  let r = Session.run s in
  let lengths = F.lengths_of r in
  let drawn = Circuit.Delay_model.drawn_lengths r.F.config.F.tech in
  let cold_wns gate dl =
    let lengths_of name =
      if String.equal name gate then
        let base = Option.value (lengths name) ~default:drawn in
        Some
          {
            Circuit.Delay_model.l_n = base.Circuit.Delay_model.l_n +. dl;
            l_p = base.Circuit.Delay_model.l_p +. dl;
          }
      else lengths name
    in
    (F.time_with r ~lengths_of).Sta.Timing.wns
  in
  let gates =
    Array.to_list r.F.netlist.Circuit.Netlist.gates
    |> List.map (fun (g : Circuit.Netlist.gate) -> g.Circuit.Netlist.gname)
  in
  let count = ref 0 in
  List.iter
    (fun gate ->
      List.iter
        (fun dl ->
          incr count;
          match
            reply_exn s (P.Whatif { gate; change = P.Resize { dl } })
          with
          | P.Whatif_r w ->
              check_ps
                (Printf.sprintf "wns(%s%+.1f)" gate dl)
                (cold_wns gate dl) w.wns_after;
              checkb "re-evaluated at least the gate" true (w.reevaluated >= 1);
              checki "resize re-measures nothing" 0 w.remeasured
          | _ -> Alcotest.fail "not a whatif reply")
        [ -4.0; -1.0; 2.0; 5.0 ])
    gates;
  checkb "swept the whole netlist" true (!count >= 20)

(* A null move (dx = dy = 0) rebuilds an identical chip, so OPC,
   extraction and timing must all land exactly on the warm state. *)
let test_null_move_is_identity () =
  let s = session_for 1 in
  let r = Session.run s in
  match reply_exn s (P.Whatif { gate = "g22"; change = P.Move { dx = 0; dy = 0 } })
  with
  | P.Whatif_r w ->
      checki "no gate re-timed" 0 w.reevaluated;
      check_ps "wns unchanged" r.F.post_opc_sta.Sta.Timing.wns w.wns_after;
      checkb "some sites re-measured" true (w.remeasured > 0)
  | _ -> Alcotest.fail "not a whatif reply"

(* The corner verb re-measures at the requested condition against the
   warm mask; a cold run whose config carries that condition as its
   silicon must produce the same records and the same timing. *)
let test_corner_matches_cold_run () =
  let s = session_for 1 in
  let r = Session.run s in
  let condition = Litho.Condition.make ~dose:1.05 ~defocus:110.0 in
  let cold = F.run { (base_config ()) with F.condition } (Circuit.Generator.c17 ()) in
  (match reply_exn s (P.Corner { dose = 1.05; defocus = 110.0; spread = None })
   with
  | P.Corner_r c ->
      check_ps "corner wns" cold.F.post_opc_sta.Sta.Timing.wns c.wns;
      check_ps "corner tns" cold.F.post_opc_sta.Sta.Timing.tns c.tns;
      checkb "no classic corners unless asked" true (c.corners = [])
  | _ -> Alcotest.fail "not a corner reply");
  (* The re-measured records themselves are bit-identical to the cold
     run's (same mask, same gates, same position-independent noise). *)
  let warm = F.extract_at ~condition r in
  checkb "records bit-identical to cold run" true (warm = cold.F.cds)

let test_ssta_matches_cold () =
  let s = session_for 1 in
  let r = Session.run s in
  let cold = F.ssta r in
  (match reply_exn s (P.Ssta { top = None }) with
  | P.Ssta_r v ->
      check_ps "wns mean" (Sta.Ssta.wns_mean cold.F.ssta) v.wns_mean;
      check_ps "wns sigma" (Sta.Ssta.wns_sigma cold.F.ssta) v.wns_sigma;
      check_ps "shift" cold.F.variation.Sta.Ssta.mean_shift v.shift;
      check_ps "local sigma includes noise floor"
        cold.F.variation.Sta.Ssta.sigma_local v.local_sigma;
      checki "conditions" cold.F.fit.Sta.Ssta.conditions v.conditions;
      checki "every endpoint reported"
        (List.length cold.F.ssta.Sta.Ssta.endpoints)
        (List.length v.endpoints);
      List.iter2
        (fun (a : Sta.Ssta.endpoint) (b : P.ssta_endpoint) ->
          checki "endpoint order" a.Sta.Ssta.net b.P.net;
          check_ps "slack mean" a.Sta.Ssta.slack_mean b.P.slack_mean;
          check_ps "criticality" a.Sta.Ssta.criticality b.P.criticality)
        cold.F.ssta.Sta.Ssta.endpoints v.endpoints
  | _ -> Alcotest.fail "not an ssta reply");
  (* top caps the list; the memoised second answer is byte-identical. *)
  (match reply_exn s (P.Ssta { top = Some 1 }) with
  | P.Ssta_r v -> checki "top caps endpoints" 1 (List.length v.endpoints)
  | _ -> Alcotest.fail "not an ssta reply");
  let line r = P.response_to_string { P.id = 1; verb = Some "ssta"; reply = Ok r } in
  checks "warm replay is byte-identical"
    (line (reply_exn s (P.Ssta { top = None })))
    (line (reply_exn s (P.Ssta { top = None })))

let test_cds_matches_records () =
  let s = session_for 1 in
  let r = Session.run s in
  (match reply_exn s (P.Cds { region = None }) with
  | P.Cds_r records ->
      checki "every site reported" (List.length r.F.cds) (List.length records)
  | _ -> Alcotest.fail "not a cds reply");
  let region = Geometry.Rect.make ~lx:0 ~ly:0 ~hx:3000 ~hy:3000 in
  match reply_exn s (P.Cds { region = Some region }) with
  | P.Cds_r records ->
      let expect =
        List.filter
          (fun (c : Cdex.Gate_cd.t) ->
            Cdex.Extract.in_region ~region c.Cdex.Gate_cd.gate)
          r.F.cds
      in
      checki "region filter" (List.length expect) (List.length records);
      checkb "region is a strict subset" true
        (List.length records < List.length r.F.cds)
  | _ -> Alcotest.fail "not a cds reply"

(* ---- observability verbs ---- *)

(* Plain metrics: session counters only, no registry.  all:true: the
   full global registry rides along, including the per-verb latency
   histograms, and the wire form carries the derived quantiles. *)
let test_metrics_all () =
  let s = session_for 1 in
  (* Ensure at least one retime has been latency-observed. *)
  ignore (Session.handle_line s {|{"verb":"retime"}|});
  (match reply_exn s (P.Metrics { all = false }) with
  | P.Metrics_r { registry = None; counters } ->
      checkb "session counters present" true
        (List.mem_assoc "serve.requests" counters)
  | _ -> Alcotest.fail "plain metrics must not carry the registry");
  let response = Session.handle_line s {|{"verb":"metrics","all":true}|} in
  (match response.P.reply with
  | Ok (P.Metrics_r { registry = Some metrics; _ }) ->
      checkb "latency histogram in registry" true
        (match List.assoc_opt "serve.latency.retime" metrics with
        | Some (Obs.Metrics.Histogram h) -> h.Obs.Metrics.count > 0
        | _ -> false)
  | _ -> Alcotest.fail "metrics all:true must carry the registry");
  let line = P.response_to_string response in
  checkb "wire form has quantiles" true
    (let contains hay needle =
       let nl = String.length needle and hl = String.length hay in
       let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
       go 0
     in
     contains line "\"quantiles\"" && contains line "\"p95\"");
  (* And the whole reply round-trips through the client parser. *)
  match P.parse_response line with
  | Ok r' -> checks "round-trip" line (P.response_to_string r')
  | Error e -> Alcotest.failf "metrics all reply failed to reparse: %s" e

let test_profile_verb () =
  let s = session_for 1 in
  checkb "tracing off before" true (not (Obs.Span.enabled ()));
  let response =
    Session.handle_line s {|{"verb":"profile","of":{"verb":"retime"}}|}
  in
  checkb "tracing off after" true (not (Obs.Span.enabled ()));
  match response.P.reply with
  | Ok (P.Profile_r { target; target_ok; spans; trace }) ->
      checks "target" "retime" target;
      checkb "target ok" true target_ok;
      checkb "recorded spans" true (spans >= 1);
      (* The trace is a valid Chrome-trace object whose event count
         matches the reported span count, and the wire line reparses. *)
      (match Obs.Json.member "traceEvents" trace with
      | Some (Obs.Json.Arr events) ->
          checki "trace events = spans" spans (List.length events);
          List.iter
            (fun e ->
              checkb "event has ts/dur/name" true
                (Obs.Json.member "ts" e <> None
                && Obs.Json.member "dur" e <> None
                && Obs.Json.member "name" e <> None))
            events
      | _ -> Alcotest.fail "trace has no traceEvents array");
      (match P.parse_response (P.response_to_string response) with
      | Ok r' ->
          checks "profile reply round-trips" (P.response_to_string response)
            (P.response_to_string r')
      | Error e -> Alcotest.failf "profile reply failed to reparse: %s" e)
  | _ -> Alcotest.fail "not a profile reply"

(* Profiling must not change a single response byte: the same query
   answered with tracing off and on (ids pinned — the session's
   sequence number advances) is byte-identical. *)
let test_profiling_preserves_bytes () =
  let s = session_for 1 in
  let pin line =
    let r = Session.handle_line s line in
    P.response_to_string { r with P.id = 0 }
  in
  let lines =
    [
      {|{"verb":"status"}|};
      {|{"verb":"retime"}|};
      {|{"verb":"whatif","gate":"g22","dl":3.0}|};
      {|{"verb":"cds","lx":0,"ly":0,"hx":3000,"hy":3000}|};
      {|{"verb":"corner","dose":1.03,"defocus":90}|};
    ]
  in
  let off = List.map pin lines in
  Obs.Span.enable ();
  let on =
    Fun.protect ~finally:Obs.Span.disable (fun () -> List.map pin lines)
  in
  List.iteri
    (fun i (a, b) ->
      checks (Printf.sprintf "line %d bytes identical under tracing" i) a b)
    (List.combine off on)

(* The slow-query log: threshold 0 logs one structured line per
   request on the sink (never the response channel); an unreachable
   threshold logs nothing. *)
let test_slowlog () =
  let s = session_for 1 in
  let script_path = Filename.temp_file "potx_slowlog" ".jsonl" in
  let out_path = Filename.temp_file "potx_slowlog" ".out" in
  let sink_path = Filename.temp_file "potx_slowlog" ".log" in
  Fun.protect
    ~finally:(fun () -> List.iter Sys.remove [ script_path; out_path; sink_path ])
  @@ fun () ->
  let write path lines =
    let oc = open_out path in
    List.iter (fun l -> output_string oc (l ^ "\n")) lines;
    close_out oc
  in
  let read_lines path =
    let ic = open_in path in
    let rec go acc =
      match input_line ic with
      | line -> go (line :: acc)
      | exception End_of_file ->
          close_in ic;
          List.rev acc
    in
    go []
  in
  write script_path [ {|{"verb":"status"}|}; "garbage"; {|{"verb":"retime"}|} ];
  let run threshold =
    write sink_path [];
    let ic = open_in script_path in
    let oc = open_out out_path in
    let sink = open_out sink_path in
    let stopped =
      Fun.protect
        ~finally:(fun () ->
          close_in ic;
          close_out oc;
          close_out sink)
        (fun () -> Server.serve_channels ~slowlog:(threshold, sink) s ic oc)
    in
    checkb "ended on EOF" false stopped;
    read_lines sink_path
  in
  let logged = run 0.0 in
  checki "one slowquery line per request" 3 (List.length logged);
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Ok j ->
          checkb "slowquery shape" true
            (Obs.Json.member "type" j = Some (Obs.Json.Str "slowquery")
            && Obs.Json.member "wall_ms" j <> None
            && Obs.Json.member "ok" j <> None)
      | Error e -> Alcotest.failf "slowlog line is not JSON: %s" e)
    logged;
  checki "unreachable threshold logs nothing" 0 (List.length (run 1e9));
  (* The response channel carries only response lines. *)
  List.iter
    (fun line ->
      match Obs.Json.parse line with
      | Ok j -> checkb "response line" true (Obs.Json.member "ok" j <> None)
      | Error e -> Alcotest.failf "response line is not JSON: %s" e)
    (read_lines out_path)

(* ---- request-order byte determinism ---- *)

let script =
  [
    {|{"verb":"status"}|};
    {|{"verb":"retime"}|};
    {|{"verb":"whatif","gate":"g22","dl":3.0}|};
    {|{"verb":"whatif","gate":"g11","dx":400,"dy":0}|};
    {|{"verb":"cds","lx":0,"ly":0,"hx":3000,"hy":3000}|};
    {|{"verb":"corner","dose":1.03,"defocus":90,"spread":8}|};
    "not json at all";
    {|{"verb":"metrics"}|};
  ]

let run_script s =
  List.map (fun line -> P.response_to_string (Session.handle_line s line)) script

let test_script_determinism () =
  let d1 = run_script (session_for 1) in
  let d2 = run_script (session_for 2) in
  let d4 = run_script (session_for 4) in
  List.iteri
    (fun i (a, b) -> checks (Printf.sprintf "line %d: domains 1 = 2" i) a b)
    (List.combine d1 d2);
  List.iteri
    (fun i (a, b) -> checks (Printf.sprintf "line %d: domains 1 = 4" i) a b)
    (List.combine d1 d4)

(* qcheck: any ad-hoc mix of read-only queries leaves the session's
   replies equal across worker-domain counts — queries are stateless
   against the warm base, so history cannot leak into replies. *)
let query_gen =
  QCheck2.Gen.(
    oneof
      [
        return {|{"verb":"retime"}|};
        map (fun e -> Printf.sprintf {|{"verb":"retime","endpoint":%d}|} e)
          (int_range 0 12);
        map2
          (fun g dl ->
            Printf.sprintf {|{"verb":"whatif","gate":"g%d","dl":%d}|} g dl)
          (int_range 10 23) (int_range (-5) 5);
        map
          (fun hx ->
            Printf.sprintf {|{"verb":"cds","lx":0,"ly":0,"hx":%d,"hy":9000}|}
              (hx * 500))
          (int_range 0 12);
        return {|{"verb":"status"}|};
      ])

let test_random_queries_deterministic =
  QCheck2.Test.make ~name:"random query scripts: domains 1 = domains 2"
    ~count:20
    QCheck2.Gen.(list_size (int_range 1 6) query_gen)
    (fun lines ->
      (* ids differ (independent sessions advance their sequence
         numbers at different rates across cases), so compare with a
         pinned id. *)
      let pin line s =
        let r = Session.handle_line s line in
        P.response_to_string { r with P.id = 0 }
      in
      List.for_all
        (fun line ->
          String.equal (pin line (session_for 1)) (pin line (session_for 2)))
        lines)

(* ---- fault tolerance ---- *)

let test_session_survives_fault () =
  let s = session_for 1 in
  let plan =
    match Fault.parse "serve.handle=fail1;seed=3" with
    | Ok p -> p
    | Error e -> Alcotest.failf "bad plan: %s" e
  in
  Fault.set_plan (Some plan);
  Fun.protect ~finally:(fun () -> Fault.set_plan None) @@ fun () ->
  let first = Session.handle_line s {|{"verb":"status"}|} in
  (match first.P.reply with
  | Error e -> checkb "fault surfaced" true (e <> "")
  | Ok _ -> Alcotest.fail "first request should absorb the injected fault");
  let second = Session.handle_line s {|{"verb":"status"}|} in
  match second.P.reply with
  | Ok (P.Status_r st) -> checks "session still answers" "c17" st.bench
  | _ -> Alcotest.fail "session did not survive the injected fault"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "malformed requests" `Quick
            test_malformed_requests;
        ] );
      ( "warm-vs-cold",
        [
          Alcotest.test_case "status matches run" `Quick
            test_status_matches_run;
          Alcotest.test_case "retime matches cold" `Quick
            test_retime_matches_cold;
          Alcotest.test_case "resize matches cold" `Quick
            test_resize_matches_cold;
          Alcotest.test_case "null move is identity" `Quick
            test_null_move_is_identity;
          Alcotest.test_case "corner matches cold run" `Quick
            test_corner_matches_cold_run;
          Alcotest.test_case "cds matches records" `Quick
            test_cds_matches_records;
          Alcotest.test_case "ssta matches cold" `Quick test_ssta_matches_cold;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "script bytes across domains" `Quick
            test_script_determinism;
          qt test_random_queries_deterministic;
        ] );
      ( "faults",
        [
          Alcotest.test_case "session survives injected fault" `Quick
            test_session_survives_fault;
        ] );
      (* Last: these advance the memoized sessions' request sequence
         numbers via handle_line, which the determinism section's
         cross-session id comparison must not see. *)
      ( "observability",
        [
          Alcotest.test_case "metrics all:true" `Quick test_metrics_all;
          Alcotest.test_case "profile verb" `Quick test_profile_verb;
          Alcotest.test_case "profiling preserves bytes" `Quick
            test_profiling_preserves_bytes;
          Alcotest.test_case "slow-query log" `Quick test_slowlog;
        ] );
    ]
