(* The resident timing service: protocol round-trips, warm-vs-cold
   reply identity, request-order byte determinism across worker-domain
   counts, and session survival of injected faults.

   The warm sessions here run the same reduced config as test_shard
   (tile=1500, 2 OPC iterations, 3 slices) so a full flow warm-up is
   cheap enough to repeat per domain count. *)

module F = Timing_opc.Flow
module P = Timing_opc_serve.Protocol
module Session = Timing_opc_serve.Session

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let checks = Alcotest.(check string)

let check_ps what = Alcotest.(check (float 1e-6)) what

let base_config ?(domains = 1) () =
  let c = F.default_config () in
  {
    c with
    F.opc_config = { c.F.opc_config with Opc.Model_opc.iterations = 2 };
    slices = 3;
    tile = 1500;
    domains;
    retry = Fault.no_retry;
    checkpoint = None;
  }

let session_for =
  let cache = Hashtbl.create 4 in
  (* Pools own spawned domains; join them before the test binary exits. *)
  at_exit (fun () -> Hashtbl.iter (fun _ s -> Session.close s) cache);
  fun domains ->
    match Hashtbl.find_opt cache domains with
    | Some s -> s
    | None ->
        let s =
          Session.create ~bench:"c17" (base_config ~domains ())
            (Circuit.Generator.c17 ())
        in
        Hashtbl.add cache domains s;
        s

(* ---- protocol ---- *)

let all_requests =
  [
    P.Status;
    P.Retime { endpoint = None };
    P.Retime { endpoint = Some 9 };
    P.Whatif { gate = "g22"; change = P.Resize { dl = 3.5 } };
    P.Whatif { gate = "g22"; change = P.Move { dx = 400; dy = -200 } };
    P.Cds { region = None };
    P.Cds { region = Some (Geometry.Rect.make ~lx:0 ~ly:0 ~hx:3000 ~hy:3000) };
    P.Corner { dose = 1.03; defocus = 90.0; spread = None };
    P.Corner { dose = 0.97; defocus = 30.0; spread = Some 8.0 };
    P.Metrics;
    P.Shutdown;
  ]

let test_request_roundtrip () =
  List.iter
    (fun r ->
      match P.parse_request (P.request_to_string ~id:7 r) with
      | Ok (Some 7, r') ->
          checkb ("roundtrip " ^ P.verb r) true (r = r')
      | Ok _ -> Alcotest.failf "lost id on %s" (P.verb r)
      | Error e -> Alcotest.failf "%s failed to reparse: %s" (P.verb r) e)
    all_requests;
  (* Without an id the parse must report None (server assigns one). *)
  (match P.parse_request (P.request_to_string P.Status) with
  | Ok (None, P.Status) -> ()
  | _ -> Alcotest.fail "id-less status");
  ()

let sample_path =
  { P.endpoint = 9; arrival = 38.25; slack = 2.5; gates = [ "g11"; "g22" ] }

let all_replies =
  [
    ( "status",
      P.Status_r
        {
          bench = "c17";
          gates = 6;
          nets = 11;
          clock_period = 40.625;
          drawn_wns = 1.875;
          wns = 2.25;
          tns = 0.0;
          cds = 24;
        } );
    ("retime", P.Retime_r { path = sample_path; reevaluated = 0 });
    ( "whatif",
      P.Whatif_r
        {
          gate = "g22";
          wns_before = 2.25;
          wns_after = 1.75;
          worst = sample_path;
          reevaluated = 3;
          remeasured = 8;
        } );
    ( "cds",
      P.Cds_r
        [
          { P.gate = "g10/MN0"; cd = 88.5; delta = -1.5; printed = true };
          { P.gate = "g10/MP0"; cd = 90.0; delta = 0.0; printed = false };
        ] );
    ( "corner",
      P.Corner_r
        {
          dose = 1.03;
          defocus = 90.0;
          wns = 1.625;
          tns = -0.5;
          corners = [ ("fast", 6.25); ("nominal", 1.875); ("slow", -2.375) ];
        } );
    ("metrics", P.Metrics_r [ ("serve.requests", 5); ("serve.verb.cds", 1) ]);
    ("shutdown", P.Shutdown_r);
  ]

let test_response_roundtrip () =
  List.iter
    (fun (verb, reply) ->
      let r = { P.id = 3; verb = Some verb; reply = Ok reply } in
      match P.parse_response (P.response_to_string r) with
      | Ok r' -> checkb ("roundtrip " ^ verb) true (r = r')
      | Error e -> Alcotest.failf "%s reply failed to reparse: %s" verb e)
    all_replies;
  let err = { P.id = 4; verb = None; reply = Error "bad JSON: oops" } in
  (match P.parse_response (P.response_to_string err) with
  | Ok r' -> checkb "error roundtrip" true (err = r')
  | Error e -> Alcotest.failf "error reply failed to reparse: %s" e);
  ()

let malformed =
  [
    "";
    "{";
    "[1,2]";
    "42";
    {|{"gate":"g10"}|};
    {|{"verb":"zap"}|};
    {|{"verb":7}|};
    {|{"id":3.5,"verb":"status"}|};
    {|{"verb":"whatif","gate":"g10"}|};
    {|{"verb":"whatif","gate":"g10","dl":1,"dx":2}|};
    {|{"verb":"whatif","dl":1}|};
    {|{"verb":"cds","lx":1}|};
    {|{"verb":"cds","lx":1,"ly":2,"hx":3}|};
    {|{"verb":"corner","dose":1.0}|};
    {|{"verb":"corner","defocus":30}|};
    {|{"verb":"retime","endpoint":1.5}|};
  ]

let test_malformed_requests () =
  List.iter
    (fun line ->
      match P.parse_request line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted malformed request %S" line)
    malformed

(* ---- warm vs cold identity ---- *)

let reply_exn s request =
  match Session.handle s request with
  | Ok reply -> reply
  | Error e -> Alcotest.failf "%s failed: %s" (P.verb request) e

let test_status_matches_run () =
  let s = session_for 1 in
  let r = Session.run s in
  match reply_exn s P.Status with
  | P.Status_r st ->
      checks "bench" "c17" st.bench;
      checki "gates" (Circuit.Netlist.num_gates r.F.netlist) st.gates;
      checki "cds" (List.length r.F.cds) st.cds;
      check_ps "wns" r.F.post_opc_sta.Sta.Timing.wns st.wns
  | _ -> Alcotest.fail "not a status reply"

(* retime must reproduce the warm view: an empty change set through
   Sta.Incremental re-evaluates nothing and returns the same paths a
   cold full analyze would. *)
let test_retime_matches_cold () =
  let s = session_for 1 in
  let r = Session.run s in
  let cold = F.time_with r ~lengths_of:(F.lengths_of r) in
  (match reply_exn s (P.Retime { endpoint = None }) with
  | P.Retime_r { path; reevaluated } ->
      checki "nothing re-evaluated" 0 reevaluated;
      let worst = List.hd cold.Sta.Timing.paths in
      checki "endpoint" worst.Sta.Timing.endpoint path.P.endpoint;
      check_ps "arrival" worst.Sta.Timing.arrival path.P.arrival;
      check_ps "slack" worst.Sta.Timing.slack path.P.slack;
      checkb "gates" true (worst.Sta.Timing.gates = path.P.gates)
  | _ -> Alcotest.fail "not a retime reply");
  (* Per-endpoint retime agrees with the cold path list too. *)
  List.iter
    (fun (p : Sta.Timing.path) ->
      match reply_exn s (P.Retime { endpoint = Some p.Sta.Timing.endpoint }) with
      | P.Retime_r { path; _ } ->
          check_ps "endpoint arrival" p.Sta.Timing.arrival path.P.arrival
      | _ -> Alcotest.fail "not a retime reply")
    cold.Sta.Timing.paths

(* Every resize what-if equals the cold batch computation: a full
   Timing.analyze under the biased lengths view. *)
let test_resize_matches_cold () =
  let s = session_for 1 in
  let r = Session.run s in
  let lengths = F.lengths_of r in
  let drawn = Circuit.Delay_model.drawn_lengths r.F.config.F.tech in
  let cold_wns gate dl =
    let lengths_of name =
      if String.equal name gate then
        let base = Option.value (lengths name) ~default:drawn in
        Some
          {
            Circuit.Delay_model.l_n = base.Circuit.Delay_model.l_n +. dl;
            l_p = base.Circuit.Delay_model.l_p +. dl;
          }
      else lengths name
    in
    (F.time_with r ~lengths_of).Sta.Timing.wns
  in
  let gates =
    Array.to_list r.F.netlist.Circuit.Netlist.gates
    |> List.map (fun (g : Circuit.Netlist.gate) -> g.Circuit.Netlist.gname)
  in
  let count = ref 0 in
  List.iter
    (fun gate ->
      List.iter
        (fun dl ->
          incr count;
          match
            reply_exn s (P.Whatif { gate; change = P.Resize { dl } })
          with
          | P.Whatif_r w ->
              check_ps
                (Printf.sprintf "wns(%s%+.1f)" gate dl)
                (cold_wns gate dl) w.wns_after;
              checkb "re-evaluated at least the gate" true (w.reevaluated >= 1);
              checki "resize re-measures nothing" 0 w.remeasured
          | _ -> Alcotest.fail "not a whatif reply")
        [ -4.0; -1.0; 2.0; 5.0 ])
    gates;
  checkb "swept the whole netlist" true (!count >= 20)

(* A null move (dx = dy = 0) rebuilds an identical chip, so OPC,
   extraction and timing must all land exactly on the warm state. *)
let test_null_move_is_identity () =
  let s = session_for 1 in
  let r = Session.run s in
  match reply_exn s (P.Whatif { gate = "g22"; change = P.Move { dx = 0; dy = 0 } })
  with
  | P.Whatif_r w ->
      checki "no gate re-timed" 0 w.reevaluated;
      check_ps "wns unchanged" r.F.post_opc_sta.Sta.Timing.wns w.wns_after;
      checkb "some sites re-measured" true (w.remeasured > 0)
  | _ -> Alcotest.fail "not a whatif reply"

(* The corner verb re-measures at the requested condition against the
   warm mask; a cold run whose config carries that condition as its
   silicon must produce the same records and the same timing. *)
let test_corner_matches_cold_run () =
  let s = session_for 1 in
  let r = Session.run s in
  let condition = Litho.Condition.make ~dose:1.05 ~defocus:110.0 in
  let cold = F.run { (base_config ()) with F.condition } (Circuit.Generator.c17 ()) in
  (match reply_exn s (P.Corner { dose = 1.05; defocus = 110.0; spread = None })
   with
  | P.Corner_r c ->
      check_ps "corner wns" cold.F.post_opc_sta.Sta.Timing.wns c.wns;
      check_ps "corner tns" cold.F.post_opc_sta.Sta.Timing.tns c.tns;
      checkb "no classic corners unless asked" true (c.corners = [])
  | _ -> Alcotest.fail "not a corner reply");
  (* The re-measured records themselves are bit-identical to the cold
     run's (same mask, same gates, same position-independent noise). *)
  let warm = F.extract_at ~condition r in
  checkb "records bit-identical to cold run" true (warm = cold.F.cds)

let test_cds_matches_records () =
  let s = session_for 1 in
  let r = Session.run s in
  (match reply_exn s (P.Cds { region = None }) with
  | P.Cds_r records ->
      checki "every site reported" (List.length r.F.cds) (List.length records)
  | _ -> Alcotest.fail "not a cds reply");
  let region = Geometry.Rect.make ~lx:0 ~ly:0 ~hx:3000 ~hy:3000 in
  match reply_exn s (P.Cds { region = Some region }) with
  | P.Cds_r records ->
      let expect =
        List.filter
          (fun (c : Cdex.Gate_cd.t) ->
            Cdex.Extract.in_region ~region c.Cdex.Gate_cd.gate)
          r.F.cds
      in
      checki "region filter" (List.length expect) (List.length records);
      checkb "region is a strict subset" true
        (List.length records < List.length r.F.cds)
  | _ -> Alcotest.fail "not a cds reply"

(* ---- request-order byte determinism ---- *)

let script =
  [
    {|{"verb":"status"}|};
    {|{"verb":"retime"}|};
    {|{"verb":"whatif","gate":"g22","dl":3.0}|};
    {|{"verb":"whatif","gate":"g11","dx":400,"dy":0}|};
    {|{"verb":"cds","lx":0,"ly":0,"hx":3000,"hy":3000}|};
    {|{"verb":"corner","dose":1.03,"defocus":90,"spread":8}|};
    "not json at all";
    {|{"verb":"metrics"}|};
  ]

let run_script s =
  List.map (fun line -> P.response_to_string (Session.handle_line s line)) script

let test_script_determinism () =
  let d1 = run_script (session_for 1) in
  let d2 = run_script (session_for 2) in
  let d4 = run_script (session_for 4) in
  List.iteri
    (fun i (a, b) -> checks (Printf.sprintf "line %d: domains 1 = 2" i) a b)
    (List.combine d1 d2);
  List.iteri
    (fun i (a, b) -> checks (Printf.sprintf "line %d: domains 1 = 4" i) a b)
    (List.combine d1 d4)

(* qcheck: any ad-hoc mix of read-only queries leaves the session's
   replies equal across worker-domain counts — queries are stateless
   against the warm base, so history cannot leak into replies. *)
let query_gen =
  QCheck2.Gen.(
    oneof
      [
        return {|{"verb":"retime"}|};
        map (fun e -> Printf.sprintf {|{"verb":"retime","endpoint":%d}|} e)
          (int_range 0 12);
        map2
          (fun g dl ->
            Printf.sprintf {|{"verb":"whatif","gate":"g%d","dl":%d}|} g dl)
          (int_range 10 23) (int_range (-5) 5);
        map
          (fun hx ->
            Printf.sprintf {|{"verb":"cds","lx":0,"ly":0,"hx":%d,"hy":9000}|}
              (hx * 500))
          (int_range 0 12);
        return {|{"verb":"status"}|};
      ])

let test_random_queries_deterministic =
  QCheck2.Test.make ~name:"random query scripts: domains 1 = domains 2"
    ~count:20
    QCheck2.Gen.(list_size (int_range 1 6) query_gen)
    (fun lines ->
      (* ids differ (independent sessions advance their sequence
         numbers at different rates across cases), so compare with a
         pinned id. *)
      let pin line s =
        let r = Session.handle_line s line in
        P.response_to_string { r with P.id = 0 }
      in
      List.for_all
        (fun line ->
          String.equal (pin line (session_for 1)) (pin line (session_for 2)))
        lines)

(* ---- fault tolerance ---- *)

let test_session_survives_fault () =
  let s = session_for 1 in
  let plan =
    match Fault.parse "serve.handle=fail1;seed=3" with
    | Ok p -> p
    | Error e -> Alcotest.failf "bad plan: %s" e
  in
  Fault.set_plan (Some plan);
  Fun.protect ~finally:(fun () -> Fault.set_plan None) @@ fun () ->
  let first = Session.handle_line s {|{"verb":"status"}|} in
  (match first.P.reply with
  | Error e -> checkb "fault surfaced" true (e <> "")
  | Ok _ -> Alcotest.fail "first request should absorb the injected fault");
  let second = Session.handle_line s {|{"verb":"status"}|} in
  match second.P.reply with
  | Ok (P.Status_r st) -> checks "session still answers" "c17" st.bench
  | _ -> Alcotest.fail "session did not survive the injected fault"

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "malformed requests" `Quick
            test_malformed_requests;
        ] );
      ( "warm-vs-cold",
        [
          Alcotest.test_case "status matches run" `Quick
            test_status_matches_run;
          Alcotest.test_case "retime matches cold" `Quick
            test_retime_matches_cold;
          Alcotest.test_case "resize matches cold" `Quick
            test_resize_matches_cold;
          Alcotest.test_case "null move is identity" `Quick
            test_null_move_is_identity;
          Alcotest.test_case "corner matches cold run" `Quick
            test_corner_matches_cold_run;
          Alcotest.test_case "cds matches records" `Quick
            test_cds_matches_records;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "script bytes across domains" `Quick
            test_script_determinism;
          qt test_random_queries_deterministic;
        ] );
      ( "faults",
        [
          Alcotest.test_case "session survives injected fault" `Quick
            test_session_survives_fault;
        ] );
    ]
