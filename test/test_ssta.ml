(* Differential tests of Sta.Ssta against the Sta.Montecarlo oracle,
   plus unit coverage of the canonical algebra, Clark's max and the
   process-window fit.

   Tolerance contract (mirrored in DESIGN.md): per-endpoint arrival
   mean within 2% + 4 standard errors of the Monte-Carlo estimate;
   arrival sigma within 35% + 0.3 ps (the first-order form freezes
   slews at their means, and slew variation compounds down deep
   chains); criticality is rank-checked only
   (a clear >50% winner must agree), because dropping cross-endpoint
   correlation flattens the probabilities.  The slop absorbs both MC
   sampling error and the canonical approximation (reconvergent local
   correlation dropped, Gaussian refit at each max). *)

let tech = Layout.Tech.node90

let env = Circuit.Delay_model.default_env tech

let checkb = Alcotest.(check bool)

let checkf eps = Alcotest.(check (float eps))

(* ---- Gaussian helpers ---- *)

let test_gaussian_cdf () =
  checkf 1e-9 "cdf 0" 0.5 (Stats.Gaussian.cdf 0.0);
  checkf 1e-6 "cdf symmetry" 1.0 (Stats.Gaussian.cdf 1.3 +. Stats.Gaussian.cdf (-1.3));
  checkf 1e-4 "cdf 1.96" 0.975 (Stats.Gaussian.cdf 1.96);
  checkb "monotone" true (Stats.Gaussian.cdf 0.5 < Stats.Gaussian.cdf 1.5)

let test_gaussian_max_moments () =
  (* max of two iid N(0,1): mean 1/sqrt(pi), var 1 - 1/pi. *)
  let m =
    Stats.Gaussian.max_moments ~mean1:0.0 ~sigma1:1.0 ~mean2:0.0 ~sigma2:1.0
      ~rho:0.0
  in
  checkf 1e-6 "iid max mean" (1.0 /. sqrt Float.pi) m.Stats.Gaussian.max_mean;
  checkf 1e-6 "iid max var" (1.0 -. (1.0 /. Float.pi)) m.Stats.Gaussian.max_var;
  checkf 1e-9 "iid tightness" 0.5 m.Stats.Gaussian.tightness;
  (* Fully correlated equal sigmas: max is just the larger mean. *)
  let d =
    Stats.Gaussian.max_moments ~mean1:5.0 ~sigma1:2.0 ~mean2:1.0 ~sigma2:2.0
      ~rho:1.0
  in
  checkf 1e-9 "degenerate mean" 5.0 d.Stats.Gaussian.max_mean;
  checkf 1e-9 "degenerate tightness" 1.0 d.Stats.Gaussian.tightness

(* ---- Canonical algebra ---- *)

let test_add_exact () =
  let a = { Sta.Ssta.mean = 1.0; g = 2.0; ind = 3.0 } in
  let b = { Sta.Ssta.mean = 10.0; g = 4.0; ind = 4.0 } in
  let s = Sta.Ssta.add a b in
  checkf 1e-9 "mean adds" 11.0 (Sta.Ssta.mean s);
  checkf 1e-9 "global adds" 6.0 s.Sta.Ssta.g;
  checkf 1e-9 "independent RSS" 5.0 s.Sta.Ssta.ind;
  checkf 1e-9 "sigma" (Float.hypot 6.0 5.0) (Sta.Ssta.sigma s)

let test_cmax_dominant () =
  (* When one operand dominates by many sigmas, Clark's max is it. *)
  let a = { Sta.Ssta.mean = 100.0; g = 1.0; ind = 1.0 } in
  let b = { Sta.Ssta.mean = 10.0; g = 1.0; ind = 1.0 } in
  let m = Sta.Ssta.cmax a b in
  checkf 1e-6 "mean" 100.0 (Sta.Ssta.mean m);
  checkf 1e-6 "sigma" (Sta.Ssta.sigma a) (Sta.Ssta.sigma m);
  checkf 1e-9 "tightness" 1.0 (Sta.Ssta.tightness a b)

let test_tightness_complementary () =
  let a = { Sta.Ssta.mean = 50.0; g = 2.0; ind = 1.0 } in
  let b = { Sta.Ssta.mean = 51.0; g = 1.5; ind = 2.5 } in
  checkf 1e-9 "P(a>=b) + P(b>=a) = 1" 1.0
    (Sta.Ssta.tightness a b +. Sta.Ssta.tightness b a)

(* ---- Clark max vs sampled max on hand-built 2-path fixtures ---- *)

(* Sample the joint law of two canonical forms (shared G, independent
   I per form) and compare the empirical max moments against cmax. *)
let check_clark_vs_sampled name a b =
  let trials = 40_000 in
  let rng = Stats.Rng.create 7 in
  let samples = Array.make trials 0.0 in
  let a_wins = ref 0 in
  for i = 0 to trials - 1 do
    let gg = Stats.Rng.normal rng ~mean:0.0 ~std:1.0 in
    let va =
      Sta.Ssta.mean a
      +. (a.Sta.Ssta.g *. gg)
      +. (a.Sta.Ssta.ind *. Stats.Rng.normal rng ~mean:0.0 ~std:1.0)
    in
    let vb =
      Sta.Ssta.mean b
      +. (b.Sta.Ssta.g *. gg)
      +. (b.Sta.Ssta.ind *. Stats.Rng.normal rng ~mean:0.0 ~std:1.0)
    in
    if va >= vb then incr a_wins;
    samples.(i) <- Float.max va vb
  done;
  let s = Stats.Summary.of_array samples in
  let m = Sta.Ssta.cmax a b in
  let se = s.Stats.Summary.std /. sqrt (float_of_int trials) in
  checkb (name ^ ": max mean") true
    (Float.abs (Sta.Ssta.mean m -. s.Stats.Summary.mean) < (5.0 *. se) +. 0.05);
  checkb (name ^ ": max sigma") true
    (Float.abs (Sta.Ssta.sigma m -. s.Stats.Summary.std)
    < (0.05 *. s.Stats.Summary.std) +. 0.05);
  checkb (name ^ ": tightness") true
    (Float.abs
       (Sta.Ssta.tightness a b -. (float_of_int !a_wins /. float_of_int trials))
    < 0.02)

let test_clark_symmetric () =
  check_clark_vs_sampled "symmetric"
    { Sta.Ssta.mean = 100.0; g = 3.0; ind = 2.0 }
    { Sta.Ssta.mean = 100.0; g = 3.0; ind = 2.0 }

let test_clark_skewed () =
  check_clark_vs_sampled "skewed"
    { Sta.Ssta.mean = 104.0; g = 2.0; ind = 1.0 }
    { Sta.Ssta.mean = 100.0; g = 1.0; ind = 4.0 }

let test_clark_correlated () =
  check_clark_vs_sampled "correlated"
    { Sta.Ssta.mean = 101.0; g = 5.0; ind = 0.5 }
    { Sta.Ssta.mean = 100.0; g = 4.5; ind = 0.8 }

(* ---- Process-window fit ---- *)

let test_fit_recovers_components () =
  (* dl.(c).(g) = m_c + r_cg with zero-mean residual rows: the fit must
     read back the condition means and the residual RMS exactly. *)
  let m = [| -3.0; 0.0; 3.0 |] in
  let r = [| [| 1.0; -1.0; 0.5; -0.5 |];
             [| -2.0; 2.0; 1.0; -1.0 |];
             [| 0.0; 0.0; 0.0; 0.0 |] |] in
  let dl = Array.mapi (fun c row -> Array.map (fun x -> m.(c) +. x) row) r in
  let f = Sta.Ssta.fit dl in
  checkf 1e-9 "shift" 0.0 f.Sta.Ssta.shift;
  checkf 1e-9 "global sigma" (sqrt 6.0) f.Sta.Ssta.global_sigma;
  let rms =
    sqrt
      (Array.fold_left
         (fun acc row -> Array.fold_left (fun a x -> a +. (x *. x)) acc row)
         0.0 r
      /. 12.0)
  in
  checkf 1e-9 "local sigma" rms f.Sta.Ssta.local_sigma;
  Alcotest.(check int) "sites" 4 f.Sta.Ssta.sites;
  Alcotest.(check int) "conditions" 3 f.Sta.Ssta.conditions

let test_fit_rejects_bad_input () =
  Alcotest.check_raises "empty" (Invalid_argument "Ssta.fit: no conditions")
    (fun () -> ignore (Sta.Ssta.fit [||]));
  checkb "ragged raises" true
    (match Sta.Ssta.fit [| [| 1.0; 2.0 |]; [| 3.0 |] |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---- Full-graph differential against the Monte-Carlo oracle ---- *)

let variation ~spread ~shift =
  {
    Sta.Ssta.sigma_global = spread;
    sigma_local = 1.0;
    mean_shift = shift;
    clock_period = 500.0;
  }

let mc_of_ssta trials (c : Sta.Ssta.config) =
  {
    Sta.Montecarlo.trials;
    sigma_global = c.Sta.Ssta.sigma_global;
    sigma_local = c.Sta.Ssta.sigma_local;
    mean_shift = c.Sta.Ssta.mean_shift;
    clock_period = c.Sta.Ssta.clock_period;
  }

let with_pool domains f =
  if domains <= 1 then f None
  else begin
    let pool = Exec.Pool.create ~name:"test_ssta" ~domains () in
    Fun.protect
      ~finally:(fun () -> Exec.Pool.shutdown pool)
      (fun () -> f (Some pool))
  end

(* One SSTA-vs-MC comparison: every endpoint's canonical arrival
   moments and criticality must match the sampled distribution within
   the documented tolerance. *)
let check_differential ~seed ~levels ~width ~spread ~shift ~domains =
  let n = Circuit.Generator.random_logic (Stats.Rng.create seed) ~levels ~width in
  let loads = Circuit.Loads.of_netlist env n in
  let config = variation ~spread ~shift in
  let trials = 600 in
  let ssta = Sta.Ssta.analyze env n ~loads config in
  let mc =
    with_pool domains (fun pool ->
        Sta.Montecarlo.run ?pool env n ~loads (mc_of_ssta trials config)
          (Stats.Rng.create (seed + 1)))
  in
  let index_of net =
    let found = ref (-1) in
    Array.iteri
      (fun i m -> if m = net then found := i)
      mc.Sta.Montecarlo.endpoints;
    !found
  in
  (* Empirical criticality: fraction of trials each endpoint carries
     the max arrival. *)
  let wins = Array.make (Array.length mc.Sta.Montecarlo.endpoints) 0 in
  for trial = 0 to trials - 1 do
    let best = ref 0 and best_a = ref neg_infinity in
    Array.iteri
      (fun e col ->
        if col.(trial) > !best_a then begin
          best := e;
          best_a := col.(trial)
        end)
      mc.Sta.Montecarlo.arrivals;
    wins.(!best) <- wins.(!best) + 1
  done;
  let moments_ok =
    List.for_all
      (fun (ep : Sta.Ssta.endpoint) ->
        let e = index_of ep.Sta.Ssta.net in
        let s = Stats.Summary.of_array mc.Sta.Montecarlo.arrivals.(e) in
        let se = s.Stats.Summary.std /. sqrt (float_of_int trials) in
        let mean_ok =
          Float.abs (Sta.Ssta.mean ep.Sta.Ssta.arrival -. s.Stats.Summary.mean)
          <= (0.02 *. s.Stats.Summary.mean) +. (4.0 *. se)
        in
        let sigma_ok =
          Float.abs (Sta.Ssta.sigma ep.Sta.Ssta.arrival -. s.Stats.Summary.std)
          <= (0.35 *. s.Stats.Summary.std) +. 0.3
        in
        e >= 0 && mean_ok && sigma_ok)
      ssta.Sta.Ssta.endpoints
  in
  (* Criticality magnitudes are only qualitative: cross-endpoint
     correlation through shared cones is dropped by the canonical
     form, which flattens the distribution (ties resolve by
     independent noise more often than in silicon).  The contract is
     rank agreement: the endpoint SSTA calls most critical must win
     within 0.25 of the empirically most-winning endpoint, so
     near-ties may swap but a clear sampled winner may never be
     ranked low. *)
  let winner_ok =
    match ssta.Sta.Ssta.endpoints with
    | top :: _ ->
        let freq e = float_of_int wins.(e) /. float_of_int trials in
        let emp_best = ref 0 in
        Array.iteri (fun e w -> if w > wins.(!emp_best) then emp_best := e) wins;
        freq (index_of top.Sta.Ssta.net) >= freq !emp_best -. 0.25
    | [] -> true
  in
  moments_ok && winner_ok

let ssta_vs_mc_differential =
  QCheck.Test.make ~name:"ssta moments = montecarlo moments" ~count:8
    QCheck.(
      quad (int_range 0 9999) (int_range 3 5) (int_range 3 5) (int_range 0 2))
    (fun (seed, levels, width, knob) ->
      (* knob picks a (corner spread, mean shift, oracle domains)
         combination so the property sweeps domains 1/2/4 and several
         variation models without a larger tuple. *)
      let spread = [| 2.0; 3.0; 4.0 |].(knob) in
      let shift = [| -2.0; 0.0; 2.0 |].(knob) in
      let domains = [| 1; 2; 4 |].(knob) in
      check_differential ~seed ~levels ~width ~spread ~shift ~domains)

(* ---- Criticality is a probability distribution ---- *)

let criticality_sums_to_one =
  QCheck.Test.make ~name:"criticalities sum to 1 over the endpoint cut"
    ~count:25
    QCheck.(triple (int_range 0 9999) (int_range 3 6) (int_range 3 6))
    (fun (seed, levels, width) ->
      let n =
        Circuit.Generator.random_logic (Stats.Rng.create seed) ~levels ~width
      in
      let loads = Circuit.Loads.of_netlist env n in
      let t = Sta.Ssta.analyze env n ~loads (variation ~spread:3.0 ~shift:0.0) in
      let sum =
        List.fold_left
          (fun acc (e : Sta.Ssta.endpoint) -> acc +. e.Sta.Ssta.criticality)
          0.0 t.Sta.Ssta.endpoints
      in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
            a.Sta.Ssta.criticality >= b.Sta.Ssta.criticality && sorted rest
        | [ _ ] | [] -> true
      in
      Float.abs (sum -. 1.0) < 1e-6
      && List.for_all
           (fun (e : Sta.Ssta.endpoint) ->
             e.Sta.Ssta.criticality >= -1e-12
             && e.Sta.Ssta.criticality <= 1.0 +. 1e-12)
           t.Sta.Ssta.endpoints
      && sorted t.Sta.Ssta.endpoints)

(* ---- Closed-form determinism across domains / shard / cache ---- *)

let cheap_config = Identity_helpers.cheap_config

(* A 2x2 window keeps the extraction sweep cheap. *)
let window =
  { Timing_opc.Flow.dose_spread = 0.02; defocus_spread = 50.0; window_steps = 2 }

let base_run = lazy (Timing_opc.Flow.run (cheap_config ()) (Circuit.Generator.c17 ()))

let render = Identity_helpers.render_ssta

let test_ssta_bytes_stable_across_domains () =
  let r = Lazy.force base_run in
  let seq = Timing_opc.Flow.ssta ~window r in
  let p2 = with_pool 2 (fun pool -> Timing_opc.Flow.ssta ?pool ~window r) in
  let p4 = with_pool 4 (fun pool -> Timing_opc.Flow.ssta ?pool ~window r) in
  (* Structural equality on the float payloads is bit-identity. *)
  checkb "2 domains bit-identical" true
    (seq.Timing_opc.Flow.fit = p2.Timing_opc.Flow.fit
    && seq.Timing_opc.Flow.ssta = p2.Timing_opc.Flow.ssta);
  checkb "4 domains bit-identical" true
    (seq.Timing_opc.Flow.fit = p4.Timing_opc.Flow.fit
    && seq.Timing_opc.Flow.ssta = p4.Timing_opc.Flow.ssta);
  Alcotest.(check string) "rendered bytes" (render seq) (render p4)

let test_ssta_bytes_stable_across_shard_and_cache () =
  let r = Lazy.force base_run in
  let alt_config =
    { (cheap_config ()) with Timing_opc.Flow.shard = 2; cache = false }
  in
  let alt = Timing_opc.Flow.run alt_config (Circuit.Generator.c17 ()) in
  let a = Timing_opc.Flow.ssta ~window r in
  let b = Timing_opc.Flow.ssta ~window alt in
  Alcotest.(check string) "shard/cache bytes" (render a) (render b);
  checkb "fit bit-identical" true (a.Timing_opc.Flow.fit = b.Timing_opc.Flow.fit);
  checkb "ssta bit-identical" true
    (a.Timing_opc.Flow.ssta = b.Timing_opc.Flow.ssta)

let () =
  Alcotest.run "ssta"
    [
      ( "gaussian",
        [
          Alcotest.test_case "cdf" `Quick test_gaussian_cdf;
          Alcotest.test_case "max moments" `Quick test_gaussian_max_moments;
        ] );
      ( "canonical",
        [
          Alcotest.test_case "add exact" `Quick test_add_exact;
          Alcotest.test_case "cmax dominant" `Quick test_cmax_dominant;
          Alcotest.test_case "tightness complementary" `Quick
            test_tightness_complementary;
        ] );
      ( "clark-vs-sampled",
        [
          Alcotest.test_case "symmetric" `Quick test_clark_symmetric;
          Alcotest.test_case "skewed" `Quick test_clark_skewed;
          Alcotest.test_case "correlated" `Quick test_clark_correlated;
        ] );
      ( "window-fit",
        [
          Alcotest.test_case "recovers components" `Quick
            test_fit_recovers_components;
          Alcotest.test_case "rejects bad input" `Quick test_fit_rejects_bad_input;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest ssta_vs_mc_differential;
          QCheck_alcotest.to_alcotest criticality_sums_to_one;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "domains" `Slow test_ssta_bytes_stable_across_domains;
          Alcotest.test_case "shard and cache" `Slow
            test_ssta_bytes_stable_across_shard_and_cache;
        ] );
    ]
