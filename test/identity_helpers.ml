(* Byte-identity test kit shared by test_shard, test_serve, test_ssta
   and test_dist: one reduced flow config cheap enough to run dozens
   of times, exact renderings of a run and of an ssta view, and the
   monolithic-baseline digest comparison every scaling feature
   (shard, domains, cache, checkpoint, faults, workers) is measured
   against. *)

module F = Timing_opc.Flow

(* tile=1500 splits the c17 die into ~5 bucket columns, so shard
   counts up to 8 exercise real partitions (and empty strips) on a
   netlist small enough to run dozens of times. *)
let base_config ?(tile = 1500) ?(iterations = 2) ?(slices = 3) ?(shard = 1)
    ?(domains = 1) () =
  let c = F.default_config () in
  {
    c with
    F.opc_config = { c.F.opc_config with Opc.Model_opc.iterations };
    slices;
    tile;
    shard;
    domains;
    retry = Fault.no_retry;
    checkpoint = None;
  }

(* The ssta sweeps re-extract over a process window, so they keep the
   default tile and trade slightly richer OPC for fewer repetitions. *)
let cheap_config () =
  let c = F.default_config () in
  {
    c with
    F.opc_config = { c.F.opc_config with Opc.Model_opc.iterations = 4 };
    slices = 5;
  }

(* Exactly the bytes the identity contract covers: exact CSV records,
   OPC stats and both STA summaries. *)
let render_run (r : F.run) =
  Format.asprintf "%a@.%a@.%a@.%a@."
    (fun ppf cds -> Cdex.Csv.write ~exact:true ppf cds)
    r.F.cds Opc.Model_opc.pp_stats r.F.opc_stats Sta.Timing.pp_summary
    r.F.drawn_sta Sta.Timing.pp_summary r.F.post_opc_sta

let render_ssta (v : F.ssta_view) =
  Format.asprintf "%a@.%a@.%a" Sta.Ssta.pp_fit v.F.fit Sta.Ssta.pp_summary
    v.F.ssta
    (Format.pp_print_list Sta.Ssta.pp_endpoint)
    v.F.ssta.Sta.Ssta.endpoints

let digest s = Digest.to_hex (Digest.string s)

let run_digest r = digest (render_run r)

let netlist_of = function
  | 0 -> Circuit.Generator.c17 ()
  | 1 -> Circuit.Generator.inv_chain 5
  | n ->
      Circuit.Generator.random_logic
        (Stats.Rng.create (1000 + n))
        ~levels:3 ~width:3

(* Monolithic baselines, one flow run per (netlist, tile). *)
let baselines : (int * int, string * Geometry.Polygon.t list) Hashtbl.t =
  Hashtbl.create 8

let baseline ~tile nl_idx =
  match Hashtbl.find_opt baselines (nl_idx, tile) with
  | Some b -> b
  | None ->
      let r = F.run (base_config ~tile ()) (netlist_of nl_idx) in
      let b = (render_run r, Opc.Mask.polygons r.F.mask) in
      Hashtbl.add baselines (nl_idx, tile) b;
      b

let check_identical ~tile ~what nl_idx (r : F.run) =
  let base_render, base_mask = baseline ~tile nl_idx in
  Alcotest.(check bool)
    (what ^ ": records/stats/sta identical")
    true
    (render_run r = base_render);
  Alcotest.(check bool)
    (what ^ ": mask identical")
    true
    (Opc.Mask.polygons r.F.mask = base_mask)
