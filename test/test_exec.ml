(* The Exec.Pool contract: parallel map/map_reduce agree with the
   sequential oracle bit-for-bit at every worker count, exceptions
   propagate deterministically, and the flow built on top produces
   identical timing whether it runs on 1 or 4 domains. *)

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

(* A floating-point task whose value depends on evaluation order if
   anything reorders the arithmetic — a good canary for determinism. *)
let heavy x =
  let acc = ref (float_of_int x) in
  for i = 1 to 500 do
    acc := !acc +. sin (!acc *. float_of_int i) /. float_of_int i
  done;
  !acc

let inputs = Array.init 97 (fun i -> i)

let with_domains domains f = Exec.Pool.with_pool ~domains f

let test_map_matches_oracle () =
  let oracle = Array.map heavy inputs in
  List.iter
    (fun domains ->
      let got = with_domains domains (fun p -> Exec.Pool.map p heavy inputs) in
      checkb
        (Printf.sprintf "map oracle, %d domains" domains)
        true
        (got = oracle))
    [ 1; 2; 4 ]

let test_map_list_order () =
  let xs = List.init 23 (fun i -> i) in
  let oracle = List.map (fun i -> i * i) xs in
  List.iter
    (fun domains ->
      let got = with_domains domains (fun p -> Exec.Pool.map_list p (fun i -> i * i) xs) in
      checkb (Printf.sprintf "map_list order, %d domains" domains) true (got = oracle))
    [ 1; 2; 4 ]

let test_concat_map_order () =
  let xs = List.init 17 Fun.id in
  let oracle = List.concat_map (fun i -> [ i; i * 10 ]) xs in
  let got =
    with_domains 4 (fun p -> Exec.Pool.concat_map_list p (fun i -> [ i; i * 10 ]) xs)
  in
  checkb "concat order preserved" true (got = oracle)

let test_map_reduce_matches_sequential_fold () =
  (* Non-associative accumulation: any reordering of the reduction
     changes the rounding, so equality here proves ordered reduction. *)
  let reduce acc x = (acc *. 0.99) +. x in
  let oracle = Array.fold_left (fun acc x -> reduce acc (heavy x)) 1.0 inputs in
  List.iter
    (fun domains ->
      let got =
        with_domains domains (fun p ->
            Exec.Pool.map_reduce p ~map:heavy ~reduce ~init:1.0 inputs)
      in
      checkb
        (Printf.sprintf "map_reduce ordered, %d domains" domains)
        true
        (got = oracle))
    [ 1; 2; 4 ]

let test_empty_and_singleton () =
  List.iter
    (fun domains ->
      with_domains domains (fun p ->
          checkb "empty map" true (Exec.Pool.map p heavy [||] = [||]);
          checkb "empty list" true (Exec.Pool.map_list p heavy [] = []);
          checkb "singleton" true (Exec.Pool.map p heavy [| 3 |] = [| heavy 3 |]);
          Alcotest.(check (float 0.0))
            "empty reduce is init" 7.5
            (Exec.Pool.map_reduce p ~map:heavy ~reduce:( +. ) ~init:7.5 [||])))
    [ 1; 4 ]

let test_exception_propagates () =
  List.iter
    (fun domains ->
      with_domains domains (fun p ->
          Alcotest.check_raises
            (Printf.sprintf "first failing index, %d domains" domains)
            (Failure "task 5")
            (fun () ->
              ignore
                (Exec.Pool.map p
                   (fun i -> if i >= 5 then failwith (Printf.sprintf "task %d" i) else i)
                   inputs));
          (* The pool survives a failed job. *)
          checki "pool usable after failure" 10
            (Exec.Pool.map_reduce p ~map:Fun.id ~reduce:( + ) ~init:0 [| 1; 2; 3; 4 |])))
    [ 1; 2; 4 ]

let test_nested_use_falls_back () =
  let got =
    with_domains 2 (fun p ->
        Exec.Pool.map_list p
          (fun i -> Exec.Pool.map_reduce p ~map:Fun.id ~reduce:( + ) ~init:i [| 1; 2 |])
          [ 10; 20; 30 ])
  in
  checkb "nested maps run inline" true (got = [ 13; 23; 33 ])

(* ---- retry supervision ---- *)

(* A task set where the given indices fail exactly once (first attempt)
   and succeed on retry; the tracking table is shared across worker
   domains, hence the lock. *)
let fail_once_tasks ~failing f =
  let seen = Hashtbl.create 97 in
  let lock = Mutex.create () in
  fun i ->
    let first_attempt =
      Mutex.protect lock (fun () ->
          if Hashtbl.mem seen i then false
          else begin
            Hashtbl.add seen i ();
            true
          end)
    in
    if first_attempt && failing i then failwith "transient" else f i

let test_retry_absorbs_transient_failures () =
  let oracle = Array.map (fun i -> i * 3) inputs in
  List.iter
    (fun domains ->
      let flaky = fail_once_tasks ~failing:(fun i -> i mod 3 = 0) (fun i -> i * 3) in
      let got =
        with_domains domains (fun p ->
            Exec.Pool.map ~retry:(Fault.retrying 1) p flaky inputs)
      in
      checkb
        (Printf.sprintf "transient failures invisible, %d domains" domains)
        true (got = oracle))
    [ 1; 2; 4 ]

let test_retry_exhausted_reraises_min_index () =
  List.iter
    (fun domains ->
      with_domains domains (fun p ->
          Alcotest.check_raises
            (Printf.sprintf "min failing index after retries, %d domains" domains)
            (Failure "task 5")
            (fun () ->
              ignore
                (Exec.Pool.map ~retry:(Fault.retrying 2) p
                   (fun i ->
                     if i >= 5 then failwith (Printf.sprintf "task %d" i) else i)
                   inputs));
          checki "pool usable after exhausted retries" 6
            (Exec.Pool.map_reduce p ~map:Fun.id ~reduce:( + ) ~init:0 [| 1; 2; 3 |])))
    [ 1; 2; 4 ]

let test_retry_stats () =
  let global = Obs.Metrics.counter "exec.retries" in
  List.iter
    (fun domains ->
      let before = Obs.Metrics.counter_value global in
      let flaky = fail_once_tasks ~failing:(fun i -> i < 7) Fun.id in
      with_domains domains (fun p ->
          ignore (Exec.Pool.map ~label:"flaky" ~retry:(Fault.retrying 2) p flaky inputs);
          let st = List.assoc "flaky" (Exec.Pool.report p) in
          checki
            (Printf.sprintf "per-label retries, %d domains" domains)
            7 st.Exec.Pool.retries);
      checki
        (Printf.sprintf "global exec.retries delta, %d domains" domains)
        (before + 7)
        (Obs.Metrics.counter_value global))
    [ 1; 2; 4 ]

let test_stats_counters () =
  with_domains 2 (fun p ->
      ignore (Exec.Pool.map ~label:"stage_a" p heavy inputs);
      ignore (Exec.Pool.map ~label:"stage_a" p heavy inputs);
      ignore (Exec.Pool.map ~label:"stage_b" p heavy inputs);
      let report = Exec.Pool.report p in
      checki "two labels" 2 (List.length report);
      let a = List.assoc "stage_a" report in
      checki "stage_a calls" 2 a.Exec.Pool.calls;
      checki "stage_a tasks" (2 * Array.length inputs) a.Exec.Pool.tasks;
      checkb "stage_a wall accumulates" true (a.Exec.Pool.wall_s >= 0.0);
      Exec.Pool.reset_stats p;
      checki "reset clears" 0 (List.length (Exec.Pool.report p)))

let test_montecarlo_pool_identical () =
  let tech = Layout.Tech.node90 in
  let env = Circuit.Delay_model.default_env tech in
  let n = Circuit.Generator.ripple_adder ~bits:4 in
  let loads = Circuit.Loads.of_netlist env n in
  let config =
    {
      Sta.Montecarlo.trials = 24;
      sigma_global = 3.0;
      sigma_local = 1.5;
      mean_shift = 0.0;
      clock_period = 500.0;
    }
  in
  let seq = Sta.Montecarlo.run env n ~loads config (Stats.Rng.create 5) in
  let par =
    with_domains 4 (fun p ->
        Sta.Montecarlo.run ~pool:p env n ~loads config (Stats.Rng.create 5))
  in
  checkb "MC wns bit-identical" true (seq.Sta.Montecarlo.wns = par.Sta.Montecarlo.wns);
  checkb "MC delay bit-identical" true
    (seq.Sta.Montecarlo.critical_delay = par.Sta.Montecarlo.critical_delay)

(* Flow-level determinism: the full layout -> OPC -> litho -> CD ->
   STA pipeline lands on the same worst slack at 1 and 4 domains. *)
let flow_at domains =
  let c = Timing_opc.Flow.default_config () in
  let c =
    {
      c with
      Timing_opc.Flow.opc_config =
        { c.Timing_opc.Flow.opc_config with Opc.Model_opc.iterations = 4 };
      slices = 5;
      domains;
    }
  in
  Timing_opc.Flow.run c (Circuit.Generator.c17 ())

let test_flow_determinism () =
  let a = flow_at 1 and b = flow_at 4 in
  Alcotest.(check (float 0.0))
    "worst slack identical at 1 and 4 domains" a.Timing_opc.Flow.post_opc_sta.Sta.Timing.wns
    b.Timing_opc.Flow.post_opc_sta.Sta.Timing.wns;
  checkb "per-gate CDs identical" true
    (List.map (fun (c : Cdex.Gate_cd.t) -> c.Cdex.Gate_cd.cds) a.Timing_opc.Flow.cds
    = List.map (fun (c : Cdex.Gate_cd.t) -> c.Cdex.Gate_cd.cds) b.Timing_opc.Flow.cds)

let () =
  Alcotest.run "exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches oracle at 1/2/4 domains" `Quick
            test_map_matches_oracle;
          Alcotest.test_case "map_list preserves order" `Quick test_map_list_order;
          Alcotest.test_case "concat_map preserves order" `Quick test_concat_map_order;
          Alcotest.test_case "map_reduce reduction is ordered" `Quick
            test_map_reduce_matches_sequential_fold;
          Alcotest.test_case "empty and singleton inputs" `Quick test_empty_and_singleton;
          Alcotest.test_case "worker exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested use falls back inline" `Quick
            test_nested_use_falls_back;
          Alcotest.test_case "retry absorbs transient failures" `Quick
            test_retry_absorbs_transient_failures;
          Alcotest.test_case "exhausted retries raise at min index" `Quick
            test_retry_exhausted_reraises_min_index;
          Alcotest.test_case "retry counters per label and global" `Quick
            test_retry_stats;
          Alcotest.test_case "per-label stats counters" `Quick test_stats_counters;
        ] );
      ( "integration",
        [
          Alcotest.test_case "Monte-Carlo identical with pool" `Quick
            test_montecarlo_pool_identical;
          Alcotest.test_case "flow worst slack identical at 1 and 4 domains" `Slow
            test_flow_determinism;
        ] );
    ]
