module G = Geometry

let tech = Layout.Tech.node90

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let model = lazy (Litho.Aerial.calibrate (Litho.Model.create ()) tech)

let small_chip () =
  let rng = Stats.Rng.create 23 in
  Layout.Placer.place tech
    { Layout.Placer.default_config with Layout.Placer.row_width = 6000 }
    rng
    [ ("u0", "INV_X1"); ("u1", "NAND2_X1"); ("u2", "NOR2_X1"); ("u3", "INV_X2") ]

(* ---- Gate_cd ---- *)

let fake_gate =
  {
    Layout.Chip.inst = "u0";
    cell_name = "INV_X1";
    tname = "MN0";
    kind = Layout.Cell.Nmos;
    gate = G.Rect.make ~lx:0 ~ly:0 ~hx:90 ~hy:600;
    drawn_l = 90;
    drawn_w = 600;
    bent = false;
  }

let test_gate_cd_stats () =
  let cd =
    {
      Cdex.Gate_cd.gate = fake_gate;
      condition = Litho.Condition.nominal;
      cds = [ 88.0; 90.0; 95.0 ];
      slices_requested = 3;
      printed = true;
    }
  in
  Alcotest.(check (float 1e-9)) "mean" 91.0 (Cdex.Gate_cd.mean_cd cd);
  Alcotest.(check (float 1e-9)) "min" 88.0 (Cdex.Gate_cd.min_cd cd);
  Alcotest.(check (float 1e-9)) "delta" 1.0 (Cdex.Gate_cd.delta_cd cd);
  match Cdex.Gate_cd.profile cd with
  | Some p ->
      Alcotest.(check (float 1e-9)) "profile width" 600.0
        (Device.Gate_profile.total_width p)
  | None -> Alcotest.fail "profile expected"

let test_gate_cd_unprinted () =
  let cd =
    {
      Cdex.Gate_cd.gate = fake_gate;
      condition = Litho.Condition.nominal;
      cds = [];
      slices_requested = 3;
      printed = false;
    }
  in
  checkb "no profile" true (Cdex.Gate_cd.profile cd = None);
  Alcotest.check_raises "mean raises"
    (Invalid_argument "Gate_cd.mean_cd: no printed slices") (fun () ->
      ignore (Cdex.Gate_cd.mean_cd cd))

(* ---- Extract ---- *)

let test_extract_all_gates () =
  let m = Lazy.force model in
  let chip = small_chip () in
  let gates = Layout.Chip.gates chip in
  let cds =
    Cdex.Extract.extract m Litho.Condition.nominal
      ~mask:(Cdex.Extract.drawn_source chip) ~gates ~slices:5 ()
  in
  checki "one record per gate" (List.length gates) (List.length cds);
  List.iter
    (fun (cd : Cdex.Gate_cd.t) ->
      checkb "printed" true cd.Cdex.Gate_cd.printed;
      let v = Cdex.Gate_cd.mean_cd cd in
      checkb "CD within 20% of drawn" true (v > 72.0 && v < 108.0))
    cds

let test_extract_condition_sensitivity () =
  let m = Lazy.force model in
  let chip = small_chip () in
  let gates = Layout.Chip.gates chip in
  let mean_at condition =
    let cds =
      Cdex.Extract.extract m condition ~mask:(Cdex.Extract.drawn_source chip) ~gates
        ~slices:3 ()
    in
    let printed = List.filter (fun c -> c.Cdex.Gate_cd.printed) cds in
    let vals = List.map Cdex.Gate_cd.mean_cd printed in
    List.fold_left ( +. ) 0.0 vals /. float_of_int (List.length vals)
  in
  let nominal = mean_at Litho.Condition.nominal in
  let overdose = mean_at (Litho.Condition.make ~dose:1.05 ~defocus:0.0) in
  checkb "dose widens gates" true (overdose > nominal +. 1.0)

(* ---- Context ---- *)

let test_context_classes () =
  let chip = small_chip () in
  let gates = Layout.Chip.gates chip in
  let contexts = List.map (Cdex.Context.classify chip) gates in
  checkb "bent gates found" true (List.mem Cdex.Context.Bent contexts);
  checkb "dense gates found" true (List.mem Cdex.Context.Dense contexts)

let test_context_iso_single_inverter () =
  let chip = Layout.Chip.create tech in
  Layout.Chip.add chip ~iname:"solo" ~cell:(Layout.Stdcell.find tech "INV_X1")
    G.Transform.identity;
  match Layout.Chip.gates chip with
  | g :: _ ->
      checkb "solo gate iso" true (Cdex.Context.classify chip g = Cdex.Context.Iso)
  | [] -> Alcotest.fail "no gates"

(* ---- Annotate ---- *)

let test_annotate_build_and_find () =
  let m = Lazy.force model in
  let chip = small_chip () in
  let gates = Layout.Chip.gates chip in
  let cds =
    Cdex.Extract.extract m Litho.Condition.nominal
      ~mask:(Cdex.Extract.drawn_source chip) ~gates ~slices:5 ()
  in
  let ann = Cdex.Annotate.build ~nmos:Device.Mosfet.nmos_90 ~pmos:Device.Mosfet.pmos_90 cds in
  checki "all gates annotated" (List.length gates) (Cdex.Annotate.size ann);
  List.iter
    (fun g ->
      match Cdex.Annotate.find ann (Layout.Chip.gate_key g) with
      | Some e ->
          checkb "l_on plausible" true
            (e.Cdex.Annotate.l_on > 60.0 && e.Cdex.Annotate.l_on < 120.0);
          checkb "l_off <= l_on + eps" true
            (e.Cdex.Annotate.l_off <= e.Cdex.Annotate.l_on +. 0.1)
      | None -> Alcotest.fail "missing annotation")
    gates

let test_annotate_drawn_identity () =
  let chip = small_chip () in
  let ann = Cdex.Annotate.drawn chip in
  Cdex.Annotate.iter ann (fun _ e ->
      Alcotest.(check (float 1e-9)) "drawn l_on" 90.0 e.Cdex.Annotate.l_on;
      Alcotest.(check (float 1e-9)) "drawn l_off" 90.0 e.Cdex.Annotate.l_off);
  checki "outliers none" 0 (List.length (Cdex.Annotate.outliers ann ~threshold:0.5))

let test_annotate_fold () =
  let chip = small_chip () in
  let ann = Cdex.Annotate.drawn chip in
  let count = Cdex.Annotate.fold ann ~init:0 ~f:(fun _ _ acc -> acc + 1) in
  checki "fold visits all" (Cdex.Annotate.size ann) count

(* ---- Csv ---- *)

let sample_cds =
  [
    {
      Cdex.Gate_cd.gate = fake_gate;
      condition = Litho.Condition.make ~dose:1.02 ~defocus:70.0;
      cds = [ 88.1234; 90.5; 92.0 ];
      slices_requested = 3;
      printed = true;
    };
    {
      Cdex.Gate_cd.gate = { fake_gate with Layout.Chip.tname = "MP0"; kind = Layout.Cell.Pmos };
      condition = Litho.Condition.nominal;
      cds = [];
      slices_requested = 3;
      printed = false;
    };
  ]

let test_csv_roundtrip () =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Cdex.Csv.write ppf sample_cds;
  Format.pp_print_flush ppf ();
  let back = Cdex.Csv.read (Buffer.contents buf) in
  checki "rows" 2 (List.length back);
  List.iter2
    (fun (a : Cdex.Gate_cd.t) (b : Cdex.Gate_cd.t) ->
      checkb "key" true
        (Layout.Chip.gate_key a.Cdex.Gate_cd.gate = Layout.Chip.gate_key b.Cdex.Gate_cd.gate);
      checkb "printed" true (a.Cdex.Gate_cd.printed = b.Cdex.Gate_cd.printed);
      checki "slice count" (List.length a.Cdex.Gate_cd.cds) (List.length b.Cdex.Gate_cd.cds);
      List.iter2
        (fun x y -> Alcotest.(check (float 1e-3)) "cd value" x y)
        a.Cdex.Gate_cd.cds b.Cdex.Gate_cd.cds;
      checkb "kind" true (a.Cdex.Gate_cd.gate.Layout.Chip.kind = b.Cdex.Gate_cd.gate.Layout.Chip.kind))
    sample_cds back

let test_csv_corner_identity () =
  (* Write -> read structural identity on records annotated at every
     process-window corner.  The CD and dose values are exactly
     representable at the writer's %.4f precision (dyadic fractions),
     so the reloaded records must equal the originals bit for bit --
     no tolerance. *)
  let corners =
    Litho.Condition.corners ~dose_range:(0.95, 1.05) ~defocus_range:(0.0, 150.0)
  in
  let records =
    List.mapi
      (fun i condition ->
        {
          Cdex.Gate_cd.gate =
            { fake_gate with Layout.Chip.inst = Printf.sprintf "u%d" i };
          condition;
          cds = [ 88.125; 90.5; 91.0625 ];
          slices_requested = 3;
          printed = true;
        })
      corners
  in
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Cdex.Csv.write ppf records;
  Format.pp_print_flush ppf ();
  let back = Cdex.Csv.read (Buffer.contents buf) in
  checkb "corner records identical after round-trip" true (back = records)

let test_csv_rejects_bad_header () =
  checkb "bad header" true
    (try ignore (Cdex.Csv.read "not,a,header\n"); false with Failure _ -> true)

let test_csv_annotation_equivalence () =
  (* An annotation built from reloaded CSV matches the original. *)
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Cdex.Csv.write ppf sample_cds;
  Format.pp_print_flush ppf ();
  let back = Cdex.Csv.read (Buffer.contents buf) in
  let build l =
    Cdex.Annotate.build ~nmos:Device.Mosfet.nmos_90 ~pmos:Device.Mosfet.pmos_90 l
  in
  let a = build sample_cds and b = build back in
  Cdex.Annotate.iter a (fun key ea ->
      match Cdex.Annotate.find b key with
      | Some eb ->
          Alcotest.(check (float 1e-2)) "l_on match" ea.Cdex.Annotate.l_on eb.Cdex.Annotate.l_on
      | None -> Alcotest.fail ("missing " ^ key))

let () =
  Alcotest.run "cdex"
    [
      ( "gate_cd",
        [
          Alcotest.test_case "stats" `Quick test_gate_cd_stats;
          Alcotest.test_case "unprinted" `Quick test_gate_cd_unprinted;
        ] );
      ( "extract",
        [
          Alcotest.test_case "all gates" `Slow test_extract_all_gates;
          Alcotest.test_case "condition" `Slow test_extract_condition_sensitivity;
        ] );
      ( "context",
        [
          Alcotest.test_case "classes" `Quick test_context_classes;
          Alcotest.test_case "iso" `Quick test_context_iso_single_inverter;
        ] );
      ( "annotate",
        [
          Alcotest.test_case "build/find" `Slow test_annotate_build_and_find;
          Alcotest.test_case "drawn identity" `Quick test_annotate_drawn_identity;
          Alcotest.test_case "fold" `Quick test_annotate_fold;
        ] );
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "corner identity" `Quick test_csv_corner_identity;
          Alcotest.test_case "bad header" `Quick test_csv_rejects_bad_header;
          Alcotest.test_case "annotation equivalence" `Quick test_csv_annotation_equivalence;
        ] );
    ]
