(* Distributed-execution identity contract: a flow run dispatched to
   any number of worker processes is byte-identical to the in-process
   run — for any shard count, any domain count, through a worker
   crashed mid-shard (reassignment), and through checkpoints written
   by one worker count and resumed by another.  Plus the wire
   protocol's torture cases: malformed and truncated work-item lines
   must be rejected with a [failed] reply, never wedge the loop.

   Workers are real child processes of the real binary: the backend
   spawns ../bin/potx.exe (a dune dep of this test), exactly as
   [potx run --workers N] does. *)

module F = Timing_opc.Flow
module IH = Identity_helpers

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

(* The test binary's main is alcotest, so it cannot re-enter as a
   worker; spawn the CLI, which can. *)
let potx_exe =
  Filename.concat (Filename.dirname Sys.executable_name) "../bin/potx.exe"

let with_backend ~workers f =
  if workers = 0 then f None
  else begin
    let b = Dist.Backend.create ~exe:potx_exe ~workers () in
    Fun.protect
      ~finally:(fun () -> Dist.Backend.shutdown b)
      (fun () -> f (Some (Dist.Backend.flow_backend b)))
  end

let run_with ?(tile = 1500) ?(shard = 1) ?(domains = 1) ?checkpoint ~workers
    nl_idx =
  with_backend ~workers @@ fun dist ->
  let config =
    { (IH.base_config ~tile ~shard ~domains ()) with F.dist; checkpoint }
  in
  F.run config (IH.netlist_of nl_idx)

(* ---- the shard x workers x domains identity matrix ---- *)

let test_matrix () =
  let completed0 = counter "dist.completed" in
  List.iter
    (fun nl_idx ->
      List.iter
        (fun workers ->
          List.iter
            (fun shard ->
              let r = run_with ~shard ~workers nl_idx in
              IH.check_identical ~tile:1500
                ~what:
                  (Printf.sprintf "netlist=%d workers=%d shard=%d" nl_idx
                     workers shard)
                nl_idx r)
            [ 1; 4 ])
        [ 0; 1; 2; 4 ])
    [ 0; 2 ];
  checkb "distributed cells really dispatched" true
    (counter "dist.completed" - completed0 > 0)

let prop_distributed_identical =
  let arb =
    QCheck.make
      ~print:(fun (nl, shard, workers, domains) ->
        Printf.sprintf "netlist=%d shard=%d workers=%d domains=%d" nl shard
          workers domains)
      QCheck.Gen.(
        quad (int_range 0 3)
          (oneofl [ 1; 2; 4; 8 ])
          (oneofl [ 0; 1; 2; 4 ])
          (oneofl [ 1; 2 ]))
  in
  QCheck.Test.make ~name:"distributed run = in-process run" ~count:6 arb
    (fun (nl_idx, shard, workers, domains) ->
      let r = run_with ~shard ~domains ~workers nl_idx in
      let base_render, base_mask = IH.baseline ~tile:1500 nl_idx in
      IH.render_run r = base_render
      && Opc.Mask.polygons r.F.mask = base_mask)

(* ---- crash mid-shard: retire, reassign, same bytes ---- *)

let test_worker_crash () =
  let reassigned0 = counter "dist.reassigned" in
  let plan =
    match Fault.parse "dist.worker1.crash=fail1" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Fun.protect ~finally:(fun () -> Fault.set_plan None) @@ fun () ->
  Fault.set_plan (Some plan);
  let r = run_with ~shard:4 ~workers:2 0 in
  IH.check_identical ~tile:1500 ~what:"crash mid-shard" 0 r;
  checkb "the crashed shard was reassigned" true
    (counter "dist.reassigned" - reassigned0 >= 1)

(* Killing every worker leaves only the inline fallback — which must
   still produce the bytes. *)
let test_all_workers_crash () =
  let inline0 = counter "dist.inline" in
  let plan =
    match Fault.parse "dist.worker0.crash=fail1;dist.worker1.crash=fail1" with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Fun.protect ~finally:(fun () -> Fault.set_plan None) @@ fun () ->
  Fault.set_plan (Some plan);
  let r = run_with ~shard:4 ~workers:2 0 in
  IH.check_identical ~tile:1500 ~what:"whole pool crashed" 0 r;
  checkb "survivor-less batch computed inline" true
    (counter "dist.inline" - inline0 >= 1)

(* ---- checkpoint interop: written under workers, resumed without ---- *)

let test_checkpoint_interop () =
  let dir = Filename.temp_file "potx_dist_ckpt" "" in
  Sys.remove dir;
  let ck resume = Timing_opc.Checkpoint.create ~dir ~resume in
  let written = run_with ~shard:4 ~workers:2 ~checkpoint:(ck false) 0 in
  IH.check_identical ~tile:1500 ~what:"checkpointing distributed run" 0 written;
  let loaded0 = counter "flow.checkpoint.loaded" in
  let resumed = run_with ~shard:4 ~workers:0 ~checkpoint:(ck true) 0 in
  IH.check_identical ~tile:1500 ~what:"worker-written checkpoint resume" 0
    resumed;
  checkb "worker-written stages loaded in-process" true
    (counter "flow.checkpoint.loaded" - loaded0 > 0);
  (* And the reverse: resumed under workers, loaded by the coordinator. *)
  let loaded1 = counter "flow.checkpoint.loaded" in
  let re2 = run_with ~shard:4 ~workers:2 ~checkpoint:(ck true) 0 in
  IH.check_identical ~tile:1500 ~what:"distributed resume" 0 re2;
  checkb "coordinator loaded the stages itself" true
    (counter "flow.checkpoint.loaded" - loaded1 > 0)

(* ---- protocol torture: malformed and truncated item lines ---- *)

let garbage_lines =
  [
    "this is not json";
    "{";
    "{\"id\":\"7\",\"shard\":";  (* truncated mid-object *)
    "{\"id\":\"3\"}";  (* well-formed JSON, missing every field *)
    "{\"id\":\"1\",\"shard\":\"5\",\"count\":\"2\",\"chip\":\"k\",\"dir\":\"d\",\"artifact\":\"a\",\"key\":\"k\",\"job\":\"opc\",\"params\":{}}";
      (* shard out of range for count *)
    "[]";
  ]

let test_item_rejection () =
  List.iter
    (fun line ->
      match Dist.Wire.item_of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage item line %S" line)
    garbage_lines;
  (* Malformed replies must read as protocol breaches, not crashes. *)
  List.iter
    (fun line ->
      match Dist.Wire.reply_of_line line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage reply line %S" line)
    [ "nope"; "{\"type\":\"elephant\"}"; "{\"type\":\"done\"}" ]

(* Feed a live worker process garbage between real EOF: every bad
   line must produce exactly one [failed] reply and the loop must
   keep serving (EOF still exits 0). *)
let test_worker_survives_garbage () =
  let dir = Filename.temp_file "potx_dist_store" "" in
  Sys.remove dir;
  let from_w, to_w =
    Unix.open_process_args potx_exe
      [| potx_exe; "worker"; "--store"; dir; "--index"; "0" |]
  in
  let reply () =
    match Dist.Wire.reply_of_line (input_line from_w) with
    | Ok r -> r
    | Error e -> Alcotest.failf "unparseable worker reply: %s" e
  in
  checkb "worker greets ready" true (reply () = Dist.Wire.Ready);
  List.iter
    (fun line ->
      output_string to_w (line ^ "\n");
      flush to_w;
      match reply () with
      | Dist.Wire.Failed (None, _) -> ()
      | r ->
          Alcotest.failf "line %S: want failed-with-no-id, got %s" line
            (Dist.Wire.reply_to_line r))
    garbage_lines;
  close_out to_w;
  match Unix.close_process (from_w, to_w) with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "worker did not exit cleanly after EOF"

(* ---- wire codecs round-trip ---- *)

let test_wire_roundtrip () =
  let config = IH.base_config ~shard:4 () in
  let chip = F.place config (IH.netlist_of 2) in
  (* Chip transport reproduces the placement exactly. *)
  let payload, extra = Dist.Wire.encode_chip chip in
  (match Dist.Wire.decode_chip ~payload ~meta:(Obs.Json.Obj extra) with
  | None -> Alcotest.fail "chip payload did not decode"
  | Some chip' ->
      Alcotest.(check string)
        "chip digest survives transport" (F.chip_digest chip)
        (F.chip_digest chip'));
  (* Item lines round-trip structurally. *)
  let item =
    {
      Dist.Wire.id = 7;
      shard = 1;
      count = 4;
      chip = "ck";
      mask = Some "mk";
      dir = "/tmp/x";
      artifact = "cds.s2of4";
      key = "key";
      job =
        Dist.Wire.Cds
          {
            condition = Litho.Condition.make ~dose:1.02 ~defocus:70.0;
            subset = Some [ "g1"; "g2" ];
          };
      params = Dist.Wire.params_of_config config;
    }
  in
  (match Dist.Wire.item_of_line (Dist.Wire.item_to_line item) with
  | Error e -> Alcotest.failf "item did not round-trip: %s" e
  | Ok item' -> checkb "item round-trips" true (item = item'));
  (* Params rebuild an equivalent worker-side config: same content
     keys, which is all the protocol relies on. *)
  match Dist.Wire.config_of_params (Dist.Wire.params_of_config config) with
  | Error e -> Alcotest.failf "params did not round-trip: %s" e
  | Ok config' ->
      Alcotest.(check string)
        "opc content key survives params transport"
        (F.opc_key config ~extra:"x" chip)
        (F.opc_key { config' with F.shard = config.F.shard } ~extra:"x" chip);
      checki "worker-side shard starts monolithic" 1 config'.F.shard

let () =
  Alcotest.run "dist"
    [
      ( "identity",
        [
          Alcotest.test_case "shard x workers matrix" `Slow test_matrix;
          QCheck_alcotest.to_alcotest prop_distributed_identical;
          Alcotest.test_case "worker crash mid-shard" `Slow test_worker_crash;
          Alcotest.test_case "whole pool crashes" `Slow test_all_workers_crash;
          Alcotest.test_case "checkpoint interop" `Slow test_checkpoint_interop;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "garbage item lines rejected" `Quick
            test_item_rejection;
          Alcotest.test_case "worker survives garbage" `Quick
            test_worker_survives_garbage;
          Alcotest.test_case "wire codecs round-trip" `Quick test_wire_roundtrip;
        ] );
    ]
