(* Sharded-flow identity contract: Flow.run with any shard count and
   any worker count is byte-identical to the monolithic run — exact
   CSV records, OPC stats, both STA summaries and the merged mask —
   including degenerate shards smaller than the optical halo, and in
   combination with the cache, checkpoint/resume and absorbed-fault
   features (the cross-feature matrix). *)

module F = Timing_opc.Flow

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

(* The reduced config, exact renderings and monolithic-baseline
   comparison live in Identity_helpers, shared with test_serve,
   test_ssta and test_dist. *)
let base_config = Identity_helpers.base_config

let render = Identity_helpers.render_run

let netlist_of = Identity_helpers.netlist_of

let baseline = Identity_helpers.baseline

let check_identical = Identity_helpers.check_identical

let test_shard_counts () =
  (* Sanity: the plan really is a multi-strip partition at this tile. *)
  let config = base_config ~shard:4 () in
  let chip = F.place config (netlist_of 0) in
  let litho = F.litho_model config in
  let shards =
    Timing_opc.Shard.plan ~tile:config.F.tile ~halo:litho.Litho.Model.halo
      ~count:4 chip
  in
  checki "4 strips planned" 4 (List.length shards);
  checkb "several strips own gates" true
    (List.length
       (List.filter (fun s -> s.Timing_opc.Shard.gates <> []) shards)
    >= 2);
  checkb "halo context is visible" true
    (List.exists (fun s -> s.Timing_opc.Shard.halo_gates > 0) shards);
  List.iter
    (fun shard ->
      let r = F.run (base_config ~shard ()) (netlist_of 0) in
      check_identical ~tile:1500 ~what:(Printf.sprintf "shard=%d" shard) 0 r)
    [ 2; 3; 5; 8 ]

let test_shard_domains () =
  List.iter
    (fun (shard, domains) ->
      let r = F.run (base_config ~shard ~domains ()) (netlist_of 0) in
      check_identical ~tile:1500
        ~what:(Printf.sprintf "shard=%d domains=%d" shard domains)
        0 r)
    [ (2, 2); (4, 2); (4, 4); (8, 4) ]

(* Strips far narrower than the optical halo (tile=6000 puts the whole
   inv_chain die in one or two bucket columns; 8 strips leave most
   shards empty) must still merge to the monolithic result. *)
let test_degenerate_shards () =
  List.iter
    (fun nl_idx ->
      List.iter
        (fun shard ->
          let r = F.run (base_config ~tile:6000 ~shard ()) (netlist_of nl_idx) in
          check_identical ~tile:6000
            ~what:(Printf.sprintf "netlist=%d narrow shard=%d" nl_idx shard)
            nl_idx r)
        [ 7; 8 ])
    [ 0; 1 ]

let test_shard_metrics () =
  let shards0 = counter "flow.shards" in
  let halo0 = counter "shard.halo_gates" in
  ignore (F.run (base_config ~shard:4 ()) (netlist_of 0));
  checki "flow.shards counts the partition" 4 (counter "flow.shards" - shards0);
  checkb "shard.halo_gates sees foreign context" true
    (counter "shard.halo_gates" - halo0 > 0)

(* qcheck: identity across random layouts x shard count x domains. *)
let prop_sharded_identical =
  let arb =
    QCheck.make
      ~print:(fun (nl, shard, domains) ->
        Printf.sprintf "netlist=%d shard=%d domains=%d" nl shard domains)
      QCheck.Gen.(
        triple (int_range 0 3) (int_range 1 8) (oneofl [ 1; 2; 4 ]))
  in
  QCheck.Test.make ~name:"sharded run = monolithic run" ~count:6 arb
    (fun (nl_idx, shard, domains) ->
      let r = F.run (base_config ~shard ~domains ()) (netlist_of nl_idx) in
      let base_render, base_mask = baseline ~tile:1500 nl_idx in
      render r = base_render && Opc.Mask.polygons r.F.mask = base_mask)

(* Cross-feature identity matrix: {cache} x {checkpoint} x {absorbed
   faults under retry} x {shard 1/4}, every cell hashing to the one
   canonical output. *)
let test_feature_matrix () =
  let canonical = Digest.string (fst (baseline ~tile:1500 0)) in
  let injected0 = counter "fault.injected" in
  let plan =
    match
      Fault.parse "litho.simulate=fail1;opc.correct=fail1;cdex.measure=fail2;seed=11"
    with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Fun.protect ~finally:(fun () -> Fault.set_plan None) @@ fun () ->
  List.iter
    (fun cache ->
      List.iter
        (fun with_ckpt ->
          List.iter
            (fun faulty ->
              List.iter
                (fun shard ->
                  let what =
                    Printf.sprintf "cache=%b ckpt=%b faults=%b shard=%d" cache
                      with_ckpt faulty shard
                  in
                  Fault.set_plan (if faulty then Some plan else None);
                  let checkpoint =
                    if with_ckpt then
                      Some
                        (Timing_opc.Checkpoint.create
                           ~dir:(Filename.temp_dir "potx_shard_" "matrix")
                           ~resume:false)
                    else None
                  in
                  let config =
                    { (base_config ~shard ()) with
                      F.cache;
                      checkpoint;
                      retry = Fault.retrying 3 }
                  in
                  let r = F.run config (netlist_of 0) in
                  checkb (what ^ ": canonical hash") true
                    (Digest.string (render r) = canonical))
                [ 1; 4 ])
            [ false; true ])
        [ false; true ])
    [ false; true ];
  checkb "matrix really injected faults" true (counter "fault.injected" - injected0 > 0)

(* Shard-granular resume: each non-empty shard checkpoints its CD
   records under its own stage; a resume at the same shard count loads
   them all, a resume at a different count recomputes extraction (new
   stage names) while still loading the shard-independent OPC stage —
   and every variant stays byte-identical. *)
let test_shard_resume () =
  let dir = Filename.temp_dir "potx_shard_" "resume" in
  let run_with ~shard ~resume =
    F.run
      { (base_config ~shard ()) with
        F.checkpoint = Some (Timing_opc.Checkpoint.create ~dir ~resume) }
      (netlist_of 0)
  in
  let nonempty =
    let config = base_config ~shard:4 () in
    let chip = F.place config (netlist_of 0) in
    let litho = F.litho_model config in
    Timing_opc.Shard.plan ~tile:config.F.tile ~halo:litho.Litho.Model.halo
      ~count:4 chip
    |> List.filter (fun s -> s.Timing_opc.Shard.gates <> [])
    |> List.length
  in
  let saved0 = counter "flow.checkpoint.saved" in
  let first = run_with ~shard:4 ~resume:false in
  checki "opc + one cds stage per non-empty shard saved" (1 + nonempty)
    (counter "flow.checkpoint.saved" - saved0);
  let loaded0 = counter "flow.checkpoint.loaded" in
  let resumed = run_with ~shard:4 ~resume:true in
  checki "all stages loaded on same-count resume" (1 + nonempty)
    (counter "flow.checkpoint.loaded" - loaded0);
  let loaded1 = counter "flow.checkpoint.loaded" in
  let recut = run_with ~shard:2 ~resume:true in
  checki "different cut only reuses the opc stage" 1
    (counter "flow.checkpoint.loaded" - loaded1);
  check_identical ~tile:1500 ~what:"checkpointing sharded run" 0 first;
  check_identical ~tile:1500 ~what:"same-count resume" 0 resumed;
  check_identical ~tile:1500 ~what:"re-cut resume" 0 recut

let () =
  Alcotest.run "shard"
    [
      ( "identity",
        [
          Alcotest.test_case "shard counts 2..8" `Slow test_shard_counts;
          Alcotest.test_case "shard x domains" `Slow test_shard_domains;
          Alcotest.test_case "degenerate narrow shards" `Slow
            test_degenerate_shards;
          QCheck_alcotest.to_alcotest prop_sharded_identical;
        ] );
      ( "features",
        [
          Alcotest.test_case "observability counters" `Slow test_shard_metrics;
          Alcotest.test_case "cache x checkpoint x faults x shard matrix" `Slow
            test_feature_matrix;
          Alcotest.test_case "shard-granular resume" `Slow test_shard_resume;
        ] );
    ]
