(* Checkpoint/resume contract: a resumed run is byte-identical to a
   clean one (for both the full flow and the selective-OPC loop), and
   a checkpoint is a cache, never a source of truth — tampered or
   input-mismatched files are rejected and the stage recomputes. *)

let checkb = Alcotest.(check bool)

let checki = Alcotest.(check int)

let counter name = Obs.Metrics.counter_value (Obs.Metrics.counter name)

let temp_dir tag = Filename.temp_dir "potx_ckpt_" tag

let base_config () =
  let c = Timing_opc.Flow.default_config () in
  {
    c with
    Timing_opc.Flow.opc_config =
      { c.Timing_opc.Flow.opc_config with Opc.Model_opc.iterations = 2 };
    slices = 3;
  }

let render (r : Timing_opc.Flow.run) =
  Format.asprintf "%a@.%a@.%a@.%a@."
    (fun ppf cds -> Cdex.Csv.write ~exact:true ppf cds)
    r.Timing_opc.Flow.cds Opc.Model_opc.pp_stats r.Timing_opc.Flow.opc_stats
    Sta.Timing.pp_summary r.Timing_opc.Flow.drawn_sta Sta.Timing.pp_summary
    r.Timing_opc.Flow.post_opc_sta

let netlist = lazy (Circuit.Generator.c17 ())

let run_with ckpt =
  Timing_opc.Flow.run
    { (base_config ()) with Timing_opc.Flow.checkpoint = ckpt }
    (Lazy.force netlist)

let test_run_roundtrip () =
  let dir = temp_dir "roundtrip" in
  let saved0 = counter "flow.checkpoint.saved" in
  let clean = run_with None in
  let first = run_with (Some (Timing_opc.Checkpoint.create ~dir ~resume:false)) in
  checki "both stages saved" 2 (counter "flow.checkpoint.saved" - saved0);
  let loaded0 = counter "flow.checkpoint.loaded" in
  let resumed = run_with (Some (Timing_opc.Checkpoint.create ~dir ~resume:true)) in
  checki "both stages loaded" 2 (counter "flow.checkpoint.loaded" - loaded0);
  checkb "checkpointing run = clean run" true (render first = render clean);
  checkb "resumed run = clean run" true (render resumed = render clean);
  (* The reloaded mask must answer window queries identically too. *)
  checkb "mask polygons identical" true
    (Opc.Mask.polygons resumed.Timing_opc.Flow.mask
    = Opc.Mask.polygons clean.Timing_opc.Flow.mask)

let test_run_selective_roundtrip () =
  let dir = temp_dir "selective" in
  let base = run_with None in
  let selected =
    Timing_opc.Flow.critical_gates base ~view:base.Timing_opc.Flow.post_opc_sta
      ~margin:5.0
  in
  checkb "some gates selected" true (selected <> []);
  let sel ckpt =
    Timing_opc.Flow.run_selective
      { base with Timing_opc.Flow.config = { base.Timing_opc.Flow.config with Timing_opc.Flow.checkpoint = ckpt } }
      ~selected
  in
  let clean = sel None in
  let saved0 = counter "flow.checkpoint.saved" in
  let first = sel (Some (Timing_opc.Checkpoint.create ~dir ~resume:false)) in
  checki "opc_sel and cds_sel saved" 2 (counter "flow.checkpoint.saved" - saved0);
  let loaded0 = counter "flow.checkpoint.loaded" in
  let resumed = sel (Some (Timing_opc.Checkpoint.create ~dir ~resume:true)) in
  checki "opc_sel and cds_sel loaded" 2 (counter "flow.checkpoint.loaded" - loaded0);
  checkb "selective checkpoint run = clean" true (render first = render clean);
  checkb "selective resume = clean" true (render resumed = render clean)

let tamper path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let oc = open_out_bin path in
  output_string oc (text ^ "# tampered\n");
  close_out oc

let test_tampered_payload_rejected () =
  let dir = temp_dir "tamper" in
  let clean = run_with None in
  let ck = Timing_opc.Checkpoint.create ~dir ~resume:false in
  ignore (run_with (Some ck));
  tamper (Timing_opc.Checkpoint.payload_path ck "cds");
  let rejected0 = counter "flow.checkpoint.rejected" in
  let loaded0 = counter "flow.checkpoint.loaded" in
  let resumed = run_with (Some { ck with Timing_opc.Checkpoint.resume = true }) in
  checki "tampered cds rejected" 1 (counter "flow.checkpoint.rejected" - rejected0);
  checki "untouched opc still loads" 1 (counter "flow.checkpoint.loaded" - loaded0);
  checkb "recomputed output = clean run" true (render resumed = render clean)

let test_stale_inputs_rejected () =
  let dir = temp_dir "stale" in
  let ck = Timing_opc.Checkpoint.create ~dir ~resume:false in
  ignore (run_with (Some ck));
  (* Same directory, different silicon condition: both stage keys
     change (the mask key does not depend on the condition, but the
     seed below perturbs placement, hence the chip hash too). *)
  let altered resume =
    Timing_opc.Flow.run
      { (base_config ()) with
        Timing_opc.Flow.seed = 43;
        condition = Litho.Condition.make ~dose:1.03 ~defocus:60.0;
        checkpoint =
          (if resume then Some { ck with Timing_opc.Checkpoint.resume = true }
           else None) }
      (Lazy.force netlist)
  in
  let clean = altered false in
  let rejected0 = counter "flow.checkpoint.rejected" in
  let loaded0 = counter "flow.checkpoint.loaded" in
  let resumed = altered true in
  checki "no stale stage loads" 0 (counter "flow.checkpoint.loaded" - loaded0);
  checki "both stale stages rejected" 2 (counter "flow.checkpoint.rejected" - rejected0);
  checkb "recomputed output matches the new inputs" true (render resumed = render clean)

let () =
  Alcotest.run "checkpoint"
    [
      ( "resume",
        [
          Alcotest.test_case "run round-trip is byte-identical" `Slow test_run_roundtrip;
          Alcotest.test_case "run_selective round-trip is byte-identical" `Slow
            test_run_selective_roundtrip;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "tampered payload recomputes" `Slow
            test_tampered_payload_rejected;
          Alcotest.test_case "stale inputs recompute" `Slow test_stale_inputs_rejected;
        ] );
    ]
