(* The FFT engine's contract: the transforms are mathematically exact
   (impulse/linearity/Parseval/round-trip at machine precision), and
   the aerial images it produces agree with the direct box-blur oracle
   within the tolerance contract in DESIGN.md — pointwise intensity
   across random layouts and process corners, and sub-nm printed CD
   with per-engine calibration — at any worker-domain count. *)

module G = Geometry

let tech = Layout.Tech.node90

let checkb = Alcotest.(check bool)

let check_eps what eps got = checkb (Printf.sprintf "%s <= %g (got %g)" what eps got) true (got <= eps)

(* ---- 1-D transform identities at sizes 8 / 32 / 128 ---- *)

let sizes = [ 8; 32; 128 ]

(* Deterministic pseudo-random signal: enough spectral spread to
   exercise every butterfly without depending on a seed API. *)
let signal n =
  Array.init n (fun i ->
      sin (float_of_int (i * i) *. 0.37) +. (0.5 *. cos (float_of_int i *. 1.91)))

let test_impulse () =
  List.iter
    (fun n ->
      let re = Array.make n 0.0 and im = Array.make n 0.0 in
      re.(0) <- 1.0;
      Litho.Fft.fft ~re ~im;
      (* The spectrum of a unit impulse is exactly 1 everywhere. *)
      Array.iteri
        (fun k r ->
          checkb (Printf.sprintf "n=%d re[%d]=1" n k) true (r = 1.0);
          checkb (Printf.sprintf "n=%d im[%d]=0" n k) true (im.(k) = 0.0))
        re)
    sizes

let test_linearity () =
  List.iter
    (fun n ->
      let x = signal n and y = Array.init n (fun i -> cos (float_of_int i *. 0.73)) in
      let a = 1.75 and b = -0.4 in
      let fft v =
        let re = Array.copy v and im = Array.make n 0.0 in
        Litho.Fft.fft ~re ~im;
        (re, im)
      in
      let xr, xi = fft x and yr, yi = fft y in
      let zr, zi = fft (Array.init n (fun i -> (a *. x.(i)) +. (b *. y.(i)))) in
      let err = ref 0.0 in
      for k = 0 to n - 1 do
        err := Float.max !err (Float.abs (zr.(k) -. ((a *. xr.(k)) +. (b *. yr.(k)))));
        err := Float.max !err (Float.abs (zi.(k) -. ((a *. xi.(k)) +. (b *. yi.(k)))))
      done;
      check_eps (Printf.sprintf "linearity n=%d" n) 1e-12 !err)
    sizes

let test_parseval () =
  List.iter
    (fun n ->
      let x = signal n in
      let re = Array.copy x and im = Array.make n 0.0 in
      Litho.Fft.fft ~re ~im;
      let space = Array.fold_left (fun a v -> a +. (v *. v)) 0.0 x in
      let freq = ref 0.0 in
      for k = 0 to n - 1 do
        freq := !freq +. (re.(k) *. re.(k)) +. (im.(k) *. im.(k))
      done;
      let freq = !freq /. float_of_int n in
      check_eps (Printf.sprintf "parseval n=%d" n) 1e-10
        (Float.abs (space -. freq) /. space))
    sizes

let test_roundtrip () =
  List.iter
    (fun n ->
      let x = signal n in
      let re = Array.copy x and im = Array.make n 0.0 in
      Litho.Fft.fft ~re ~im;
      Litho.Fft.ifft ~re ~im;
      let err = ref 0.0 in
      for i = 0 to n - 1 do
        err := Float.max !err (Float.abs (re.(i) -. x.(i)));
        err := Float.max !err (Float.abs im.(i))
      done;
      check_eps (Printf.sprintf "roundtrip n=%d" n) 1e-12 !err)
    sizes

let test_roundtrip_2d () =
  let nx = 32 and ny = 8 in
  let x = signal (nx * ny) in
  let re = Array.copy x and im = Array.make (nx * ny) 0.0 in
  Litho.Fft.fft2 ~re ~im ~nx ~ny;
  Litho.Fft.ifft2 ~re ~im ~nx ~ny;
  let err = ref 0.0 in
  for i = 0 to (nx * ny) - 1 do
    err := Float.max !err (Float.abs (re.(i) -. x.(i)));
    err := Float.max !err (Float.abs im.(i))
  done;
  check_eps "2-D roundtrip" 1e-12 !err

(* ---- convolve_gaussians: impulse response vs the analytic kernel ---- *)

let test_convolve_impulse_analytic () =
  let n = 64 in
  let r = Litho.Raster.create ~origin:G.Point.origin ~step:1.0 ~nx:n ~ny:n in
  let c = n / 2 in
  Litho.Raster.set r c c 1.0;
  let kernels = [ (3.0, 0.8); (7.0, 0.2) ] in
  Litho.Fft.convolve_gaussians r ~kernels;
  (* By Poisson summation, the inverse DFT of the sampled analytic
     transfer exp(-2pi^2 s^2 f^2) is the continuous normalised
     Gaussian periodised at the padded extent. *)
  let g sigma d =
    let p = float_of_int n in
    let one x = exp (-.(x *. x) /. (2.0 *. sigma *. sigma)) /. (sigma *. sqrt (2.0 *. Float.pi)) in
    one d +. one (d +. p) +. one (d -. p)
  in
  let err = ref 0.0 in
  for iy = 0 to n - 1 do
    for ix = 0 to n - 1 do
      let dx = float_of_int (ix - c) and dy = float_of_int (iy - c) in
      let expect =
        List.fold_left
          (fun a (sigma, w) -> a +. (w *. g sigma dx *. g sigma dy))
          0.0 kernels
      in
      err := Float.max !err (Float.abs (Litho.Raster.get r ix iy -. expect))
    done
  done;
  check_eps "impulse vs analytic Gaussian" 1e-9 !err

(* ---- differential: FFT engine vs direct oracle ---- *)

let conditions =
  Litho.Condition.nominal
  :: Litho.Condition.corners ~dose_range:(0.95, 1.05) ~defocus_range:(0.0, 120.0)

let model = lazy (Litho.Aerial.calibrate (Litho.Model.create ()) tech)

let model_fft = lazy (Litho.Aerial.calibrate ~engine:Litho.Aerial.Fft (Litho.Model.create ()) tech)

(* Random clusters of vertical lines — the poly-layer idiom the OPC
   and extraction layers feed the simulator. *)
let arb_lines =
  QCheck.make
    ~print:(fun ps ->
      String.concat ";" (List.map (Format.asprintf "%a" G.Polygon.pp) ps))
    QCheck.Gen.(
      let* n = int_range 1 3 in
      let* xs = list_repeat n (int_range 0 8) in
      let* ws = list_repeat n (int_range 8 16) in
      let* hs = list_repeat n (int_range 4 10) in
      return
        (List.mapi
           (fun i ((x, w), h) ->
             G.Polygon.of_rect
               (G.Rect.make
                  ~lx:((i * 300) + (x * 10))
                  ~ly:0
                  ~hx:((i * 300) + (x * 10) + (w * 10))
                  ~hy:(h * 100)))
           (List.combine (List.combine xs ws) hs)))

(* The intensity budget of the tolerance contract (DESIGN.md): the
   direct cascade approximates each Gaussian by three box passes, the
   FFT applies the variance-matched analytic Gaussian; their pointwise
   gap stays within ~3% of the clear-field intensity. *)
let intensity_budget = 0.03

let prop_intensity_close =
  QCheck.Test.make ~name:"fft intensity within budget of direct oracle" ~count:4
    arb_lines (fun polygons ->
      let m = Lazy.force model in
      let window = G.Rect.make ~lx:0 ~ly:0 ~hx:1100 ~hy:700 in
      List.for_all
        (fun c ->
          let d = Litho.Aerial.simulate ~engine:Litho.Aerial.Direct m c ~window polygons in
          let f = Litho.Aerial.simulate ~engine:Litho.Aerial.Fft m c ~window polygons in
          let worst = ref 0.0 in
          (* Compare inside the window proper: the halo fringe is
             discarded by every consumer (CD cutlines, pvband scans
             clip to the window) and carries the box-blur truncation
             edge. *)
          for iy = 0 to Litho.Raster.ny d - 1 do
            for ix = 0 to Litho.Raster.nx d - 1 do
              let x = Litho.Raster.x_of_ix d ix and y = Litho.Raster.y_of_iy d iy in
              if
                x >= 0.0 && x <= 1100.0 && y >= 0.0 && y <= 700.0
              then
                worst :=
                  Float.max !worst
                    (Float.abs (Litho.Raster.get d ix iy -. Litho.Raster.get f ix iy))
            done
          done;
          !worst <= intensity_budget)
        conditions)

(* Printed CD of the centre line of a dense array, by bisection on the
   bilinear-sampled intensity against the condition's threshold. *)
let printed_cd m engine condition =
  let l = tech.Layout.Tech.gate_length in
  let pitch = tech.Layout.Tech.poly_pitch in
  let nlines = 9 and height = 2000 in
  let lines =
    List.init nlines (fun i ->
        let xc = pitch * i in
        G.Polygon.of_rect
          (G.Rect.make ~lx:(xc - (l / 2)) ~ly:0 ~hx:(xc + (l / 2)) ~hy:height))
  in
  let center = pitch * (nlines / 2) in
  let window =
    G.Rect.make ~lx:(center - pitch)
      ~ly:((height / 2) - 300)
      ~hx:(center + pitch)
      ~hy:((height / 2) + 300)
  in
  let img = Litho.Aerial.simulate ~engine m condition ~window lines in
  let th = Litho.Model.printed_threshold m condition in
  let y = float_of_int (height / 2) in
  let over x = Litho.Raster.sample img x y -. th in
  let crossing lo hi =
    (* [over lo > 0 >= over hi]: bisect to the printing edge. *)
    let lo = ref lo and hi = ref hi in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      if over mid >= 0.0 then lo := mid else hi := mid
    done;
    0.5 *. (!lo +. !hi)
  in
  let cx = float_of_int center and half = float_of_int pitch /. 2.0 in
  crossing cx (cx +. half) -. crossing cx (cx -. half)

(* The CD budget of the tolerance contract (DESIGN.md): with each
   engine centred by its own calibration and the FFT variance-matched
   to the cascade, the cross-engine CD delta on a production-like
   pattern stays under a nanometre across the extraction conditions
   (the flow's silicon window), and under 2.5 nm even at the extreme
   pvband corners where the threshold rides the shallow flank of a
   heavily defocused profile. *)
let cd_budget_inner_nm = 1.0

let cd_budget_corner_nm = 2.5

let test_cd_within_budget () =
  let delta c =
    let d = printed_cd (Lazy.force model) Litho.Aerial.Direct c in
    let f = printed_cd (Lazy.force model_fft) Litho.Aerial.Fft c in
    Float.abs (d -. f)
  in
  List.iter
    (fun c ->
      check_eps
        (Format.asprintf "inner CD delta @ %a" Litho.Condition.pp c)
        cd_budget_inner_nm (delta c))
    [
      Litho.Condition.nominal;
      Litho.Condition.make ~dose:1.015 ~defocus:70.0;
      Litho.Condition.make ~dose:1.02 ~defocus:70.0;
      Litho.Condition.make ~dose:0.98 ~defocus:40.0;
      Litho.Condition.make ~dose:0.95 ~defocus:0.0;
      Litho.Condition.make ~dose:1.05 ~defocus:0.0;
    ];
  List.iter
    (fun c ->
      check_eps
        (Format.asprintf "corner CD delta @ %a" Litho.Condition.pp c)
        cd_budget_corner_nm (delta c))
    (Litho.Condition.corners ~dose_range:(0.95, 1.05) ~defocus_range:(0.0, 120.0))

(* ---- determinism across worker domains ---- *)

let test_domains_bit_identical () =
  let m = Lazy.force model in
  let windows =
    List.init 4 (fun i ->
        let x = i mod 2 * 900 and y = i / 2 * 900 in
        G.Rect.make ~lx:x ~ly:y ~hx:(x + 900) ~hy:(y + 900))
  in
  let polygons =
    List.init 6 (fun i ->
        G.Polygon.of_rect
          (G.Rect.make ~lx:(i * 280) ~ly:100 ~hx:((i * 280) + 120) ~hy:1500))
  in
  let source w = List.filter (fun p -> G.Rect.inter (G.Polygon.bbox p) w <> None) polygons in
  let sim ?pool () =
    Litho.Aerial.simulate_tiles ?pool ~engine:Litho.Aerial.Fft m
      Litho.Condition.nominal ~windows source
  in
  let seq = sim () in
  List.iter
    (fun domains ->
      let par = Exec.Pool.with_pool ~name:"test_fft" ~domains (fun p -> sim ~pool:p ()) in
      checkb
        (Printf.sprintf "fft tiles bit-identical at %d domains" domains)
        true
        (List.for_all2
           (fun a b -> Litho.Raster.unsafe_data a = Litho.Raster.unsafe_data b)
           seq par))
    [ 2; 4 ]

let () =
  Alcotest.run "fft"
    [
      ( "transform",
        [
          Alcotest.test_case "impulse" `Quick test_impulse;
          Alcotest.test_case "linearity" `Quick test_linearity;
          Alcotest.test_case "parseval" `Quick test_parseval;
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "roundtrip 2-D" `Quick test_roundtrip_2d;
          Alcotest.test_case "impulse vs analytic" `Quick test_convolve_impulse_analytic;
        ] );
      ( "differential",
        [
          QCheck_alcotest.to_alcotest prop_intensity_close;
          Alcotest.test_case "CD budget" `Slow test_cd_within_budget;
        ] );
      ( "determinism",
        [ Alcotest.test_case "domains 1/2/4" `Slow test_domains_bit_identical ] );
    ]
