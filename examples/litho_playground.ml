(* Lithography playground: the substrate in isolation.

     dune exec examples/litho_playground.exe

   Prints the classic litho curves on simple test structures: CD
   through pitch, CD through dose/focus, line-end pullback, and what
   model-based OPC does to each — no netlist or placement involved. *)

module G = Geometry

let tech = Layout.Tech.node90

let model = Litho.Aerial.calibrate (Litho.Model.create ()) tech

let line ?(w = tech.Layout.Tech.gate_length) x =
  G.Polygon.of_rect (G.Rect.make ~lx:(x - (w / 2)) ~ly:0 ~hx:(x + (w / 2)) ~hy:4000)

let cd_of ?(condition = Litho.Condition.nominal) polygons x =
  let window = G.Rect.make ~lx:(x - 500) ~ly:1500 ~hx:(x + 500) ~hy:2500 in
  let img = Litho.Aerial.simulate model condition ~window polygons in
  Litho.Metrology.cd_horizontal img
    ~threshold:(Litho.Model.printed_threshold model condition)
    ~y:2000.0 ~x_center:(float_of_int x) ~search:250.0

let fmt_cd = function Some cd -> Printf.sprintf "%.2fnm" cd | None -> "NOT PRINTED"

let () =
  Format.printf "calibrated model: %a@." Litho.Model.pp model;

  (* 1. CD through pitch: the iso-dense bias OPC exists to fix. *)
  let rows =
    List.map
      (fun pitch ->
        let polygons = List.init 7 (fun i -> line ((i - 3) * pitch)) in
        let drawn_cd = cd_of polygons 0 in
        let corrected, _ =
          Opc.Model_opc.correct model
            (Opc.Model_opc.default_config tech)
            ~targets:polygons ~context:[]
        in
        let opc_cd = cd_of corrected 0 in
        [ string_of_int pitch; fmt_cd drawn_cd; fmt_cd opc_cd ])
      [ 350; 450; 600; 900; 1400; 2800 ]
  in
  Timing_opc.Report.table Format.std_formatter
    ~title:"CD through pitch (drawn 90nm line, centre of 7-line array)"
    ~header:[ "pitch_nm"; "no OPC"; "model OPC" ] rows;

  (* 2. CD through the process window on a dense array. *)
  let dense = List.init 7 (fun i -> line ((i - 3) * tech.Layout.Tech.poly_pitch)) in
  let rows =
    List.map
      (fun (dose, defocus) ->
        let condition = Litho.Condition.make ~dose ~defocus in
        [ Printf.sprintf "%.2f" dose;
          Printf.sprintf "%.0f" defocus;
          fmt_cd (cd_of ~condition dense 0) ])
      [ (0.95, 0.0); (1.0, 0.0); (1.05, 0.0); (1.0, 80.0); (1.0, 160.0); (0.96, 120.0) ]
  in
  Timing_opc.Report.table Format.std_formatter ~title:"CD through dose and defocus"
    ~header:[ "dose"; "defocus_nm"; "CD" ] rows;

  (* 3. Line-end pullback, before and after OPC. *)
  let stub = [ G.Polygon.of_rect (G.Rect.make ~lx:(-45) ~ly:0 ~hx:45 ~hy:2000) ] in
  let end_of polygons =
    let window = G.Rect.make ~lx:(-500) ~ly:1200 ~hx:500 ~hy:2700 in
    let img = Litho.Aerial.simulate model Litho.Condition.nominal ~window polygons in
    Litho.Metrology.edge_from img ~threshold:model.Litho.Model.threshold ~x:0.0
      ~y:1500.0 ~dx:0.0 ~dy:1.0 ~search:800.0
  in
  let corrected_stub, _ =
    Opc.Model_opc.correct model (Opc.Model_opc.default_config tech) ~targets:stub
      ~context:[]
  in
  let show label v =
    match v with
    | Some d -> Format.printf "%s: printed end at y=%.1f (drawn 2000, pullback %.1fnm)@."
                  label (1500.0 +. d) (2000.0 -. (1500.0 +. d))
    | None -> Format.printf "%s: no end found@." label
  in
  Format.printf "@.line-end pullback:@.";
  show "  drawn mask" (end_of stub);
  show "  OPC mask  " (end_of corrected_stub);

  (* 4. Process-variability band of the dense array, one simulation
     per corner condition across POTX_DOMAINS workers (the band is
     bit-identical for any worker count). *)
  let window = G.Rect.make ~lx:(-700) ~ly:1500 ~hx:700 ~hy:2500 in
  let conditions =
    Litho.Condition.corners ~dose_range:(0.96, 1.04) ~defocus_range:(0.0, 120.0)
  in
  let pv =
    Exec.Pool.with_pool ~name:"playground"
      ~domains:(Exec.Pool.env_domains ~default:1 ())
      (fun pool -> Litho.Pvband.compute ~pool model conditions ~window dense)
  in
  Format.printf "@.%a@." Litho.Pvband.pp pv
